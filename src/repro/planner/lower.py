"""Lowering: the only place physical IR becomes RDD programs.

The rule emitters (:mod:`repro.planner.tiling`,
:mod:`repro.planner.groupby_join`, :mod:`repro.planner.rdd_rules`)
recognize patterns and attach a lowering payload (resolved setups,
compiled kernels, cost choices) to the physical root node; the passes
(:mod:`repro.planner.passes`) may rewrite the DAG; and this module —
and only this module — turns the result into an executable
:class:`~repro.planner.plan.Plan` built from engine RDD operations.

Keeping construction in one place is what makes the IR trustworthy:
whatever the trace shows is what runs, because nothing else can build a
program.  Lowering also implements the execute-time wrappers that used
to be scattered through the planner (estimated-shuffle recording, the
adaptive re-optimization hook, the total-reduce / collect adapters) and
the cash-out of the CSE pass: when common-subplan elimination is on,
the plan's replicated shuffle inputs are marked so the
:class:`~repro.engine.block_manager.BlockManager` may serve their map
outputs to later executions of the same (fingerprint-identical) plan.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional, Sequence

import numpy as np

from ..comprehension.ast import Expr, Var, free_vars, to_source
from ..comprehension.errors import SacPlanError
from ..comprehension.interpreter import Interpreter
from ..comprehension.monoids import monoid
from ..engine import EngineContext, GridPartitioner, RDD
from ..storage.registry import REGISTRY, BuildContext
from ..storage.tiled import TiledMatrix, TiledVector
from .analysis import CompInfo
from .codegen import get_fused_kernel
from .groupby_join import GbjMatch, _match_stats, reconsider_join_strategy
from .ir import IRNode, _digest
from .kernels import combine_tiles, contract, gather
from .passes import PlanState, cse_enabled, fusion_enabled
from .plan import (
    Plan, RULE_COORDINATE, RULE_GROUP_BY_JOIN, RULE_LOCAL,
    RULE_PRESERVE_TILING, RULE_TILED_REDUCE, RULE_TILED_SHUFFLE,
)
from .tiling import ResolvedGen, TiledSetup, _result_storage, _tile_shape


def lower(state: PlanState) -> Plan:
    """Turn a pass-pipeline result into an executable plan."""
    root = state.physical
    if root is None:
        plan = lower_local(state.expr, state.env, state.build_context)
        plan.trace = state.trace
        plan.logical = state.logical
        return plan

    plan = _LOWERERS[root.attrs["rule"]](root, state)
    plan.estimate = root.attrs.get("estimate")
    plan.candidates = root.attrs.get("candidates") or {}
    if root.attrs.get("adaptive_install"):
        _install_adaptive_reconsideration(plan, root, state)
    if root.attrs.get("record_estimate"):
        _record_estimate(plan, state.engine)
    plan = _apply_wrapper(plan, state)
    plan.trace = state.trace
    plan.logical = state.logical
    plan.physical = root
    if root.attrs.get("reusable") and cse_enabled(state.options):
        plan.fingerprint = _plan_fingerprint(root, state)
    return plan


def _plan_fingerprint(root: IRNode, state: PlanState) -> str:
    """Identity of the lowered program, for common-subplan reuse.

    Two compiles share a fingerprint only when they lowered the same
    physical DAG over the *same storage objects* under the same planner
    options, result wrapper, and adaptive setting — i.e. when handing
    back the earlier compile's Plan (and its shuffle outputs) is
    indistinguishable from re-planning.
    """
    options = state.options
    manager = getattr(state.engine, "adaptive", None)
    return _digest((
        root.identity_fingerprint(),
        state.wrapper,
        state.reduce_monoid,
        (options.group_by_join, options.force_coordinate,
         options.allow_tiled, options.broadcast_threshold,
         fusion_enabled(options)),
        bool(manager is not None and manager.enabled),
    ))


def _apply_wrapper(plan: Plan, state: PlanState) -> Plan:
    """Adapt a distributed plan's result back into the driver."""
    if state.wrapper is None:
        return plan
    inner_thunk = plan.thunk
    if state.wrapper == "reduce":
        mon_name = state.reduce_monoid
        mon = monoid(mon_name) if mon_name != "count" else None

        def reduce_thunk():
            rdd = inner_thunk()
            assert isinstance(rdd, RDD)
            if mon_name == "count":
                return rdd.count()
            return rdd.aggregate(mon.zero, mon.combine, mon.combine)

        return Plan(
            rule=plan.rule,
            description=(
                f"{plan.description}; then total {mon_name}/ reduction"
            ),
            thunk=reduce_thunk,
            pseudocode=plan.pseudocode,
            details=plan.details,
            estimate=plan.estimate,
            candidates=plan.candidates,
        )
    return Plan(
        rule=plan.rule,
        description=plan.description + "; collected to a list",
        thunk=lambda: inner_thunk().collect(),
        pseudocode=plan.pseudocode,
        details=plan.details,
        estimate=plan.estimate,
        candidates=plan.candidates,
    )


def _base_plan(root: IRNode, thunk: Callable[[], Any]) -> Plan:
    """A plan carrying the emitter's annotations off the root node.

    ``details`` is copied: the adaptive thunk writes into it at execute
    time, and one root may be lowered into many plans when the session
    reuses a pass-pipeline result.
    """
    return Plan(
        rule=root.attrs["rule"],
        description=root.attrs["description"],
        thunk=thunk,
        pseudocode=root.attrs.get("pseudocode", ""),
        details=dict(root.attrs.get("details") or {}),
    )


# ----------------------------------------------------------------------
# Section 5.1 — preserve-tiling (Eq. 17)
# ----------------------------------------------------------------------


def _lower_preserve(root: IRNode, state: PlanState) -> Plan:
    """Join tiles on the output coordinate, compute locally per tile."""
    fused = root.attrs.get("fused_kernel")
    if fused is not None:
        plan = _lower_preserve_fused(root, state, fused)
        if plan is not None:
            return plan
    p = root.attrs["payload"]
    setup: TiledSetup = p["setup"]
    builder, args = p["builder"], p["args"]
    out_classes, value_fn, masks = p["out_classes"], p["value_fn"], p["masks"]
    out_stats = p["out_stats"]
    info = setup.info

    position = {cls: pos for pos, cls in enumerate(out_classes)}
    keyed = [
        _keyed_by_out_coord(setup, gen, out_classes, position)
        for gen in setup.gens
    ]

    joined = keyed[0].map_values(lambda tile: (tile,))
    for other in keyed[1:]:
        joined = joined.join(other).map_values(lambda pair: pair[0] + (pair[1],))

    gens = setup.gens
    # Only materialize index grids for variables the kernels actually use.
    used = free_vars(info.head_value)
    for guard in info.residual_guards:
        used |= free_vars(guard)
    used_index_vars = {
        var for var, cls in setup.classes.items()
        if var in used and cls in position
    }
    n = setup.tile_size
    identity = list(range(len(out_classes)))
    axis_maps = [
        [position[cls] for cls in gen.axis_classes] for gen in gens
    ]
    needs_grids = bool(used_index_vars) or any(
        axis_map != identity for axis_map in axis_maps
    )

    def compute(record):
        coords, tiles = record
        shape = _tile_shape(setup, out_classes, coords)
        env: dict[str, Any] = {}
        grids = np.indices(shape) if needs_grids else None
        for var in used_index_vars:
            pos = position[setup.classes[var]]
            env[var] = grids[pos] + coords[pos] * n
        for gen, axis_map, tile in zip(gens, axis_maps, tiles):
            if gen.value_var is not None:
                if axis_map == identity:
                    env[gen.value_var] = tile
                else:
                    env[gen.value_var] = gather(tile, axis_map, grids)
        value = np.asarray(value_fn(env), dtype=np.float64)
        if value.shape != shape:
            value = np.broadcast_to(value, shape).copy()
        if masks:
            keep = np.ones(shape, dtype=bool)
            for mask_fn in masks:
                keep &= np.asarray(mask_fn(env), dtype=bool)
            value = np.where(keep, value, 0.0)
        return coords, value

    tiles_rdd = joined.map(compute)
    return _base_plan(
        root,
        lambda: _result_storage(setup, builder, args, tiles_rdd, stats=out_stats),
    )


def _lower_preserve_fused(
    root: IRNode, state: PlanState, fused: dict[str, Any]
) -> Optional[Plan]:
    """One generated NumPy kernel per partition instead of N Python hops.

    The ``fusion`` pass already proved the chain has a source form and
    stashed the generated text; here it is compiled (once per
    fingerprint, through the bounded kernel cache) and lowered to a
    single elementwise ``map_partitions``.  In ``"tiles"`` mode the
    kernel consumes the generator's raw tile records — the whole
    projection / compute / clip chain is one hop; in ``"joined"`` mode
    the tile join is kept and only compute + clip fuse.  Returns
    ``None`` on any compile-time surprise so the caller falls back to
    the interpreter chain, which is always correct.
    """
    p = root.attrs["payload"]
    setup: TiledSetup = p["setup"]
    builder, args = p["builder"], p["args"]
    out_classes, out_stats = p["out_classes"], p["out_stats"]
    metrics = state.engine.metrics if state.engine is not None else None
    try:
        kernel = get_fused_kernel(fused["fingerprint"], fused["source"], metrics)
    except Exception:
        return None
    if fused["mode"] == "tiles":
        source_rdd = setup.gens[0].tile_records()
    else:
        position = {cls: pos for pos, cls in enumerate(out_classes)}
        keyed = [
            _keyed_by_out_coord(setup, gen, out_classes, position)
            for gen in setup.gens
        ]
        source_rdd = keyed[0].map_values(lambda tile: (tile,))
        for other in keyed[1:]:
            source_rdd = source_rdd.join(other).map_values(
                lambda pair: pair[0] + (pair[1],)
            )
    tiles_rdd = source_rdd.map_partitions(kernel, elementwise=True)
    n = setup.tile_size

    def build():
        # Clipping already ran inside the kernel; build storage directly.
        if builder == "tiled":
            result = TiledMatrix(int(args[0]), int(args[1]), n, tiles_rdd)
        else:
            result = TiledVector(int(args[0]), n, tiles_rdd)
        if out_stats is not None:
            result.stats = out_stats
        return result

    return _base_plan(root, build)


def _keyed_by_out_coord(
    setup: TiledSetup,
    gen: ResolvedGen,
    out_classes: Sequence[int],
    position: dict[int, int],
) -> RDD:
    """Map a generator's tiles to their (replicated) output coordinates."""
    missing = [p for p, cls in enumerate(out_classes) if cls not in gen.axis_classes]
    missing_grids = [range(setup.grid_size(out_classes[p])) for p in missing]
    n_out = len(out_classes)

    def expand(record):
        coords, tile = record
        base: dict[int, int] = {}
        for axis, cls in enumerate(gen.axis_classes):
            p = position[cls]
            if p in base and base[p] != coords[axis]:
                return  # e.g. off-diagonal tile for an i == j query
            base[p] = coords[axis]
        for combo in itertools.product(*missing_grids):
            key = [0] * n_out
            for p, value in base.items():
                key[p] = value
            for p, value in zip(missing, combo):
                key[p] = value
            yield tuple(key), tile

    return gen.tile_records().flat_map(lambda record: list(expand(record)) or [])


# ----------------------------------------------------------------------
# Section 5.2 — tiled shuffle (Eq. 19)
# ----------------------------------------------------------------------


def _lower_shuffle(root: IRNode, state: PlanState) -> Plan:
    """Replicate tiles to I_f(K), groupByKey, scatter into output tiles."""
    p = root.attrs["payload"]
    setup: TiledSetup = p["setup"]
    builder, args = p["builder"], p["args"]
    out_dims, key_fns = p["out_dims"], p["key_fns"]
    value_fn, masks, out_stats = p["value_fn"], p["masks"], p["out_stats"]
    gen = setup.gens[0]
    n = setup.tile_size

    def tile_env(coords, tile):
        grids = np.indices(tile.shape)
        # Bind each index variable to its own axis (by position, not by
        # class: a residual ``i == j`` unifies the classes but the two
        # variables still read different axes — the guard masks them).
        env: dict[str, Any] = {}
        for axis, var in enumerate(gen.index_vars):
            env[var] = grids[axis] + coords[axis] * n
        if gen.value_var is not None:
            env[gen.value_var] = tile
        return env

    def keep_mask(env, shape):
        keep = np.ones(shape, dtype=bool)
        for mask_fn in masks:
            keep &= np.asarray(mask_fn(env), dtype=bool)
        return keep

    def replicate(record):
        """Compute I_f for one tile: destination coords it contributes to."""
        coords, tile = record
        env = tile_env(coords, tile)
        keys = [np.asarray(fn(env)) for fn in key_fns]
        keep = keep_mask(env, tile.shape)
        for dim, key in zip(out_dims, keys):
            keep &= (key >= 0) & (key < dim)
        if not keep.any():
            return []
        dest = np.stack(
            [np.broadcast_to(key, tile.shape)[keep] // n for key in keys], axis=-1
        )
        unique = {tuple(int(c) for c in row) for row in np.unique(dest, axis=0)}
        return [(k, (coords, tile)) for k in sorted(unique)]

    replicated = gen.tile_records().flat_map(replicate)
    grouped = replicated.group_by_key()

    def assemble(record):
        out_coord, contributions = record
        shape = tuple(
            min(n, dim - c * n) for dim, c in zip(out_dims, out_coord)
        )
        out = np.zeros(shape)
        for coords, tile in contributions:
            env = tile_env(coords, tile)
            keys = [
                np.broadcast_to(np.asarray(fn(env)), tile.shape) for fn in key_fns
            ]
            keep = keep_mask(env, tile.shape)
            for dim, key in zip(out_dims, keys):
                keep &= (key >= 0) & (key < dim)
            for key, k_block in zip(keys, out_coord):
                keep &= key // n == k_block
            if not keep.any():
                continue
            value = np.broadcast_to(
                np.asarray(value_fn(env), dtype=np.float64), tile.shape
            )
            locals_ = tuple(
                (key[keep] - k_block * n) for key, k_block in zip(keys, out_coord)
            )
            out[locals_] = value[keep]
        return out_coord, out

    tiles_rdd = grouped.map(assemble)
    return _base_plan(
        root,
        lambda: _result_storage(setup, builder, args, tiles_rdd, stats=out_stats),
    )


# ----------------------------------------------------------------------
# Section 5.3 — tiled reduce (join + reduceByKey)
# ----------------------------------------------------------------------


def _lower_tiled_reduce(root: IRNode, state: PlanState) -> Plan:
    """Join tiles on index equalities, contract per pair, reduceByKey(⊗′)."""
    p = root.attrs["payload"]
    setup: TiledSetup = p["setup"]
    builder, args = p["builder"], p["args"]
    out_classes, slot_monoids = p["out_classes"], p["slot_monoids"]
    compute, finish, out_stats = p["compute"], p["finish"], p["out_stats"]

    joined = _join_on_shared_classes(setup)

    def to_partial(record):
        coords, tiles = record
        key = tuple(coords[cls] for cls in out_classes)
        return key, compute(coords, tiles)

    def combine(left, right):
        return tuple(
            combine_tiles(m, a, b) for m, a, b in zip(slot_monoids, left, right)
        )

    partials = joined.map(to_partial)
    reduced = partials.reduce_by_key(combine)
    tiles_rdd = reduced.map(lambda kv: (kv[0], finish(kv[0], kv[1])))
    return _base_plan(
        root,
        lambda: _result_storage(setup, builder, args, tiles_rdd, stats=out_stats),
    )


def _join_on_shared_classes(setup: TiledSetup) -> RDD:
    """Progressively join generators' tiles on shared index classes.

    Produces records ``(coords: dict class -> block coord, tiles: tuple)``.
    """

    def initial(gen: ResolvedGen) -> RDD:
        def convert(record):
            coords, tile = record
            mapping: dict[int, int] = {}
            for axis, cls in enumerate(gen.axis_classes):
                if cls in mapping and mapping[cls] != coords[axis]:
                    return None
                mapping[cls] = coords[axis]
            return mapping, (tile,)

        return gen.tile_records().map(convert).filter(lambda r: r is not None)

    acc = initial(setup.gens[0])
    acc_classes = set(setup.gens[0].axis_classes)
    for gen in setup.gens[1:]:
        shared = sorted(acc_classes & set(gen.axis_classes))
        nxt = initial(gen)
        if shared:
            left = acc.map(
                lambda rec, s=tuple(shared): (tuple(rec[0][c] for c in s), rec)
            )
            right = nxt.map(
                lambda rec, s=tuple(shared): (tuple(rec[0][c] for c in s), rec)
            )
            acc = left.join(right).map(_merge_records)
        else:
            acc = acc.cartesian(nxt).map(
                lambda pair: ({**pair[0][0], **pair[1][0]}, pair[0][1] + pair[1][1])
            )
        acc_classes |= set(gen.axis_classes)
    return acc


def _merge_records(joined):
    _key, (left, right) = joined
    coords = {**left[0], **right[0]}
    return coords, left[1] + right[1]


# ----------------------------------------------------------------------
# Section 5.4 — group-by-join (SUMMA / broadcast)
# ----------------------------------------------------------------------


def _lower_group_by_join(root: IRNode, state: PlanState) -> Plan:
    p = root.attrs["payload"]
    if "side" in p:
        thunk = build_broadcast_thunk(
            p["setup"], p["match"], p["builder"], p["args"], p["side"],
            reduce_partitions=p["reduce_partitions"],
        )
        return _base_plan(root, thunk)
    return _lower_gbj_replicate(root, state)


def _lower_gbj_replicate(root: IRNode, state: PlanState) -> Plan:
    """The SUMMA-style translation: replicate row/column tile bands."""
    p = root.attrs["payload"]
    setup: TiledSetup = p["setup"]
    match: GbjMatch = p["match"]
    builder, args = p["builder"], p["args"]
    left_gen, right_gen = match.left_gen, match.right_gen
    grid_rows, grid_cols = match.grid_rows, match.grid_cols
    left_row_axis, left_join_axis = match.left_row_axis, match.left_join_axis
    right_col_axis, right_join_axis = match.right_col_axis, match.right_join_axis
    left_axes, right_axes, out_axes = match.left_axes, match.right_axes, match.out_axes
    term, mon, value_vars = match.term, match.mon, match.value_vars

    def replicate_left(record):
        coords, tile = record
        row = coords[left_row_axis]
        k = coords[left_join_axis]
        return [((row, q), (k, tile)) for q in range(grid_cols)]

    def replicate_right(record):
        coords, tile = record
        col = coords[right_col_axis]
        k = coords[right_join_axis]
        return [((p, col), (k, tile)) for p in range(grid_rows)]

    left_rdd = left_gen.tile_records().flat_map(replicate_left)
    right_rdd = right_gen.tile_records().flat_map(replicate_right)
    if root.attrs.get("cse") and cse_enabled(state.options):
        # The replicated bands are the plan's shuffle inputs.  Opting
        # their lineage in lets the BlockManager serve the recorded map
        # outputs to the fresh cogroup a later execution of this same
        # plan builds — iterations 2..k of a reused subplan skip the
        # replication shuffle entirely.
        left_rdd.mark_shuffle_reuse()
        right_rdd.mark_shuffle_reuse()

    def reduce_destination(record):
        key, (left_tiles, right_tiles) = record
        by_k: dict[int, list[np.ndarray]] = {}
        for k, tile in right_tiles:
            by_k.setdefault(k, []).append(tile)
        out: Optional[np.ndarray] = None
        for k, left_tile in left_tiles:
            for right_tile in by_k.get(k, ()):
                partial = contract(
                    left_tile, right_tile, left_axes, right_axes, out_axes,
                    term, mon, (value_vars[0], value_vars[1]),
                )
                out = partial if out is None else combine_tiles(mon, out, partial)
        if out is None:
            return None
        return key, out

    def build():
        engine = left_gen.tiles.ctx
        partitioner = GridPartitioner(
            grid_rows, grid_cols, engine.default_parallelism
        )
        cogrouped = left_rdd.cogroup(right_rdd, partitioner=partitioner)
        tiles_rdd = (
            cogrouped.map(reduce_destination).filter(lambda r: r is not None)
        )
        return _result_storage(
            setup, builder, args, tiles_rdd, stats=_match_stats(match)
        )

    return _base_plan(root, build)


def build_broadcast_thunk(
    setup: TiledSetup,
    match: GbjMatch,
    builder: str,
    args: tuple,
    side: str,
    reduce_partitions: Optional[int] = None,
) -> Callable[[], Any]:
    """Map-side join: broadcast the small ``side``, stream the large side.

    Also used directly by the adaptive layer
    (:func:`~repro.planner.groupby_join.reconsider_join_strategy`) when
    a runtime measurement downgrades a planned strategy to broadcast.
    """
    small_is_left = side == "left"
    small = match.left_gen if small_is_left else match.right_gen
    large = match.right_gen if small_is_left else match.left_gen
    left_row_axis, left_join_axis = match.left_row_axis, match.left_join_axis
    right_col_axis, right_join_axis = match.right_col_axis, match.right_join_axis
    left_axes, right_axes, out_axes = match.left_axes, match.right_axes, match.out_axes
    term, mon, value_vars = match.term, match.mon, match.value_vars

    def build():
        engine = large.tiles.ctx
        # Collect and broadcast the small side, keyed by its join coord.
        by_join: dict[int, list] = {}
        if small_is_left:
            for coords, tile in small.tile_records().collect():
                by_join.setdefault(coords[left_join_axis], []).append(
                    (coords[left_row_axis], tile)
                )
        else:
            for coords, tile in small.tile_records().collect():
                by_join.setdefault(coords[right_join_axis], []).append(
                    (coords[right_col_axis], tile)
                )
        broadcast = engine.broadcast(by_join)

        def contract_large(record):
            coords, big_tile = record
            out = []
            if small_is_left:
                k = coords[right_join_axis]
                col = coords[right_col_axis]
                for row, small_tile in broadcast.value.get(k, ()):
                    partial = contract(
                        small_tile, big_tile, left_axes, right_axes, out_axes,
                        term, mon, (value_vars[0], value_vars[1]),
                    )
                    out.append(((row, col), partial))
            else:
                k = coords[left_join_axis]
                row = coords[left_row_axis]
                for col, small_tile in broadcast.value.get(k, ()):
                    partial = contract(
                        big_tile, small_tile, left_axes, right_axes, out_axes,
                        term, mon, (value_vars[0], value_vars[1]),
                    )
                    out.append(((row, col), partial))
            return out

        tiles_rdd = (
            large.tile_records()
            .flat_map(contract_large)
            .reduce_by_key(
                lambda a, b: combine_tiles(mon, a, b),
                num_partitions=reduce_partitions,
            )
        )
        return _result_storage(
            setup, builder, args, tiles_rdd, stats=_match_stats(match)
        )

    return build


# ----------------------------------------------------------------------
# Section 4 — coordinate fallback (Rules 13/14)
# ----------------------------------------------------------------------


def _lower_coordinate(root: IRNode, state: PlanState) -> Plan:
    """Element-level RDD operations: joins (Rule 14), group-by (Rule 13)."""
    p = root.attrs["payload"]
    info: CompInfo = p["info"]
    env, engine = p["env"], p["engine"]
    builder, args = p["builder"], p["args"]
    build_context: BuildContext = p["build_context"]
    sources: list[RDD] = p["sources"]

    evaluator = Interpreter(env, build_context=build_context)

    def expr_fn(expr: Expr) -> Callable[[dict], Any]:
        return lambda record: evaluator.evaluate(expr, extra_env=record)

    steps: list[str] = []

    def build() -> Any:
        rdd = _join_generators(info, sources, expr_fn, steps)
        for guard in info.residual_guards:
            fn = expr_fn(guard)
            rdd = rdd.filter(fn)
            steps.append(f".filter({to_source(guard)})")
        if info.group_key_vars is not None:
            rdd = _apply_group_by(info, rdd, expr_fn, steps)
        else:
            key_fn = expr_fn(info.head_key) if info.head_key is not None else None
            value_fn = expr_fn(info.head_value)
            if key_fn is None:
                rdd = rdd.map(value_fn)
                steps.append(".map(head)")
            else:
                rdd = rdd.map(lambda record: (key_fn(record), value_fn(record)))
                steps.append(f".map(record => ({to_source(info.head_key)}, value))")
        return _finish(rdd, engine, builder, args, build_context)

    plan = _base_plan(root, build)
    plan.pseudocode = "\n".join(["<elements>"] + steps) if steps else ""
    return plan


def _join_generators(
    info: CompInfo,
    sources: list[RDD],
    expr_fn: Callable[[Expr], Callable[[dict], Any]],
    steps: list[str],
) -> RDD:
    """Fold generators into one RDD of record dicts, joining when possible."""
    patterns = [
        _record_binder(gen) for gen in info.generators
    ]
    joined_rdd = sources[0].map(patterns[0])
    joined_set = {0}
    steps.append(f"{_gen_name(info, 0)}.map(bind)")
    remaining = list(range(1, len(info.generators)))
    pending_joins = list(info.joins)

    while remaining:
        progress = False
        for gen_idx in list(remaining):
            conds = [
                j
                for j in pending_joins
                if {j.left_gen, j.right_gen} <= joined_set | {gen_idx}
                and gen_idx in (j.left_gen, j.right_gen)
            ]
            if not conds:
                continue
            left_keys = []
            right_keys = []
            for cond in conds:
                if cond.left_gen == gen_idx:
                    right_keys.append(cond.left)
                    left_keys.append(cond.right)
                else:
                    right_keys.append(cond.right)
                    left_keys.append(cond.left)
            left_fns = [expr_fn(e) for e in left_keys]
            right_fns = [expr_fn(e) for e in right_keys]
            bind = patterns[gen_idx]
            left = joined_rdd.map(
                lambda rec, fns=tuple(left_fns): (tuple(f(rec) for f in fns), rec)
            )
            right = sources[gen_idx].map(bind).map(
                lambda rec, fns=tuple(right_fns): (tuple(f(rec) for f in fns), rec)
            )
            joined_rdd = left.join(right).map(
                lambda kv: {**kv[1][0], **kv[1][1]}
            )
            steps.append(
                f".join({_gen_name(info, gen_idx)} on "
                f"{[to_source(e) for e in left_keys]})"
            )
            joined_set.add(gen_idx)
            remaining.remove(gen_idx)
            for cond in conds:
                pending_joins.remove(cond)
            progress = True
        if not progress:
            # No join condition available: cartesian product.
            gen_idx = remaining.pop(0)
            bind = patterns[gen_idx]
            joined_rdd = joined_rdd.cartesian(sources[gen_idx].map(bind)).map(
                lambda pair: {**pair[0], **pair[1]}
            )
            steps.append(f".cartesian({_gen_name(info, gen_idx)})")
            joined_set.add(gen_idx)
    return joined_rdd


def _record_binder(gen) -> Callable[[tuple], dict]:
    index_vars = list(gen.index_vars)
    value_var = gen.value_var

    def bind(pair: tuple) -> dict:
        key, value = pair
        record: dict[str, Any] = {}
        if len(index_vars) == 1:
            record[index_vars[0]] = key
        else:
            flat = _flatten_key(key)
            for name, part in zip(index_vars, flat):
                record[name] = part
        if value_var is not None:
            record[value_var] = value
        return record

    return bind


def _flatten_key(key: Any) -> list:
    if isinstance(key, tuple):
        out: list = []
        for part in key:
            out.extend(_flatten_key(part))
        return out
    return [key]


def _gen_name(info: CompInfo, index: int) -> str:
    source = info.generators[index].source
    return source.name if isinstance(source, Var) else f"gen{index}"


def _apply_group_by(
    info: CompInfo,
    rdd: RDD,
    expr_fn: Callable[[Expr], Callable[[dict], Any]],
    steps: list[str],
) -> RDD:
    if not info.slots:
        raise SacPlanError(
            "a distributed group-by needs aggregations over the lifted "
            "variables; collect-the-group queries run on the interpreter"
        )
    key_fns = [expr_fn(e) for e in (info.group_key_exprs or [])]
    slot_fns = [expr_fn(slot.expr) for slot in info.slots]
    monoids = [monoid(slot.monoid) for slot in info.slots]
    single_key = len(key_fns) == 1

    def to_pair(record: dict) -> tuple:
        key = key_fns[0](record) if single_key else tuple(f(record) for f in key_fns)
        return key, tuple(f(record) for f in slot_fns)

    def combine(left: tuple, right: tuple) -> tuple:
        return tuple(m.combine(a, b) for m, a, b in zip(monoids, left, right))

    reduced = rdd.map(to_pair).reduce_by_key(combine)
    steps.append(
        ".map(record => (key, (g1..gm))).reduceByKey(⊗)"
    )

    residual = info.residual_value
    slot_vars = [slot.slot_var for slot in info.slots]
    if len(slot_vars) == 1 and residual == Var(slot_vars[0]):
        result = reduced.map_values(lambda aggs: aggs[0])
    else:
        finish = expr_fn(residual)
        key_vars = info.group_key_vars or []

        def apply_residual(kv):
            key, aggs = kv
            record = dict(zip(slot_vars, aggs))
            parts = key if isinstance(key, tuple) else (key,)
            record.update(zip(key_vars, parts))
            return key, finish(record)

        result = reduced.map(apply_residual)
        steps.append(".mapValues(f)")
    return result


def _finish(
    rdd: RDD,
    engine: EngineContext,
    builder: Optional[str],
    args: tuple,
    build_context: BuildContext,
) -> Any:
    """Down-coerce the element RDD through the requested builder."""
    if builder is None or builder == "rdd":
        return rdd
    if builder == "tiled":
        return _assemble_tiled_matrix(rdd, engine, int(args[0]), int(args[1]), build_context)
    if builder == "tiled_vector":
        return _assemble_tiled_vector(rdd, engine, int(args[0]), build_context)
    # Local builders: collect the elements to the driver and build there.
    return REGISTRY.build(builder, args, rdd.collect(), build_context)


def _assemble_tiled_matrix(
    rdd: RDD, engine: EngineContext, rows: int, cols: int, ctx: BuildContext
) -> TiledMatrix:
    """The paper's distributed ``tiled`` builder: group elements by tile.

    Uses ``combineByKey`` so elements accumulate into dense tile buffers
    map-side instead of shuffling a list per tile (groupByKey).
    """
    n = ctx.tile_size
    helper = TiledMatrix(rows, cols, n, engine.empty_rdd())

    def create(entry):
        coord, offset_value = entry
        tile = np.zeros(helper.tile_shape(*coord))
        tile[offset_value[0]] = offset_value[1]
        return tile

    def merge_value(tile, entry):
        _coord, offset_value = entry
        tile[offset_value[0]] = offset_value[1]
        return tile

    def merge_tiles(a, b):
        return np.where(b != 0, b, a)

    keyed = rdd.filter(
        lambda kv: 0 <= kv[0][0] < rows and 0 <= kv[0][1] < cols
    ).map(
        lambda kv: (
            (kv[0][0] // n, kv[0][1] // n),
            ((kv[0][0] // n, kv[0][1] // n), ((kv[0][0] % n, kv[0][1] % n), kv[1])),
        )
    )
    tiles = keyed.combine_by_key(create, merge_value, merge_tiles)
    return TiledMatrix(rows, cols, n, tiles)


def _assemble_tiled_vector(
    rdd: RDD, engine: EngineContext, length: int, ctx: BuildContext
) -> TiledVector:
    n = ctx.tile_size
    helper = TiledVector(length, n, engine.empty_rdd())

    def create(entry):
        block_index, offset_value = entry
        block = np.zeros(helper.block_length(block_index))
        block[offset_value[0]] = offset_value[1]
        return block

    def merge_value(block, entry):
        _index, offset_value = entry
        block[offset_value[0]] = offset_value[1]
        return block

    def merge_blocks(a, b):
        return np.where(b != 0, b, a)

    keyed = rdd.filter(lambda kv: 0 <= kv[0] < length).map(
        lambda kv: (kv[0] // n, (kv[0] // n, (kv[0] % n, kv[1])))
    )
    blocks = keyed.combine_by_key(create, merge_value, merge_blocks)
    return TiledVector(length, n, blocks)


# ----------------------------------------------------------------------
# Execute-time wrappers
# ----------------------------------------------------------------------


def _install_adaptive_reconsideration(
    plan: Plan, root: IRNode, state: PlanState
) -> Plan:
    """Wrap the plan's thunk with the stage-boundary re-optimization.

    At execute time — when upstream stages have materialized and real
    sizes exist — the join strategy is reconsidered from measurements
    (:func:`~repro.planner.groupby_join.reconsider_join_strategy`) and
    a broadcast downgrade replaces the planned program if it fires.
    Every adaptive decision recorded while the plan runs (downgrades,
    but also the engine's skew splits and partition coalescing) is
    sliced onto ``plan.adaptive_decisions`` for ``explain()``.
    """
    engine = state.engine
    manager = getattr(engine, "adaptive", None)
    if manager is None or not manager.enabled:
        return plan
    p = root.attrs["payload"]
    setup = p["setup"]
    builder, args = p["builder"], p["args"]
    # Tiled-reduce roots carry no GbjMatch in their payload; the pass
    # that armed the hook recorded the matched pattern separately.
    match = root.attrs["adaptive_match"]
    candidates = root.attrs.get("candidates") or {}
    strategy = root.attrs.get("strategy")
    inner = plan.thunk

    def thunk():
        start = len(manager.decisions)
        replacement = reconsider_join_strategy(
            engine, setup, match, candidates, strategy, builder, args
        )
        if replacement is not None:
            new_thunk, new_strategy = replacement
            plan.details["adaptive_strategy"] = new_strategy
            result = new_thunk()
        else:
            result = inner()
        plan.adaptive_decisions = list(manager.decisions[start:])
        return result

    plan.thunk = thunk
    return plan


def _record_estimate(plan: Plan, engine: EngineContext) -> Plan:
    """Record the chosen estimate when the plan actually executes."""
    if plan.estimate is None:
        return plan
    inner = plan.thunk
    estimated = plan.estimate.shuffle_bytes

    def thunk():
        engine.metrics.record_estimated_shuffle(estimated)
        return inner()

    plan.thunk = thunk
    return plan


# ----------------------------------------------------------------------
# Local fallback
# ----------------------------------------------------------------------


def lower_local(
    expr: Expr, env: dict[str, Any], build_context: BuildContext
) -> Plan:
    from .local_codegen import CodegenUnsupported, compile_local
    from .plan import RULE_LOCAL_CODEGEN

    try:
        source, thunk = compile_local(expr, env, build_context)
    except CodegenUnsupported as reason:
        interpreter = Interpreter(env, build_context=build_context)
        return Plan(
            rule=RULE_LOCAL,
            description="reference in-memory evaluation (Sections 2-3)",
            thunk=lambda: interpreter.evaluate(expr),
            details={"codegen_fallback": str(reason)},
        )
    return Plan(
        rule=RULE_LOCAL_CODEGEN,
        description=(
            "generated imperative loop code (Sections 2-3): sparsifiers "
            "inlined as index loops, builders as array writes"
        ),
        thunk=thunk,
        pseudocode=source,
    )


#: Rule name -> lowerer.  Adding a rule means adding an emitter *and* a
#: lowerer; the dispatch failing loudly on an unknown rule is the point.
_LOWERERS: dict[str, Callable[[IRNode, PlanState], Plan]] = {
    RULE_PRESERVE_TILING: _lower_preserve,
    RULE_TILED_SHUFFLE: _lower_shuffle,
    RULE_TILED_REDUCE: _lower_tiled_reduce,
    RULE_GROUP_BY_JOIN: _lower_group_by_join,
    RULE_COORDINATE: _lower_coordinate,
}
