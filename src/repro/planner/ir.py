"""The two-level plan IR: explicit operator DAGs between AST and RDDs.

The planner used to decide *and* build in one motion: each translation
rule returned an executable closure, so the chosen plan could never be
inspected, compared, snapshot-tested, or rewritten after the fact.  This
module gives every plan an explicit shape instead:

* a **logical** DAG describes what the comprehension computes (scans,
  filters, a group-by or a head map) independent of any strategy;
* a **physical** DAG describes how the chosen rule executes it
  (tile replication, broadcast, SUMMA cogroup, coordinate fallback),
  annotated with tiling classes, :class:`~repro.storage.stats.DensityStats`,
  partitioner facts, and the cost model's estimates.

Nodes are deliberately dumb records — ``op`` + children + attributes —
so passes (:mod:`repro.planner.passes`) can rewrite them and the single
lowering site (:mod:`repro.planner.lower`) can turn them into RDD
programs.  Two fingerprints serve two audiences:

* :meth:`IRNode.structural_fingerprint` hashes only the *semantic*
  signature (``sig``) — stable across sessions and storage objects, used
  by golden tests and ``to_dict`` exports;
* :meth:`IRNode.identity_fingerprint` additionally hashes the identity
  of the storages a plan reads (``identity``), so two plans share a
  fingerprint only when re-executing one would read the very same
  distributed data — the key common-subplan reuse is allowed to use.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

#: Operator vocabulary.  Logical and physical trees draw from the same
#: set; ``level`` tells them apart.
OP_SCAN = "Scan"
OP_MAP_TILES = "MapTiles"
OP_FUSED_KERNEL = "FusedKernel"
OP_FILTER = "Filter"
OP_GROUP_BY = "GroupBy"
OP_GROUP_BY_JOIN = "GroupByJoin"
OP_TILED_REDUCE = "TiledReduce"
OP_REPLICATE = "Replicate"
OP_BROADCAST = "Broadcast"
OP_ASSEMBLE = "Assemble"
OP_COORDINATE = "Coordinate"
OP_LOCAL = "Local"
OP_REDUCE = "Reduce"
OP_COLLECT = "Collect"

LOGICAL = "logical"
PHYSICAL = "physical"


@dataclass(eq=False)
class IRNode:
    """One operator in a plan DAG.

    ``sig`` carries the node's *semantic* signature (hashable, repr-
    stable values only); ``identity`` carries runtime object identities
    (storage ``id()``s) that distinguish structurally equal plans over
    different data.  ``attrs`` is free-form annotation space — tiling
    classes, density stats, cost estimates, and the opaque lowering
    payload the rule emitters stash for :mod:`repro.planner.lower`.
    """

    op: str
    level: str = PHYSICAL
    children: tuple["IRNode", ...] = ()
    sig: tuple = ()
    identity: tuple = ()
    attrs: dict[str, Any] = field(default_factory=dict)
    label: str = ""
    #: Memoized :meth:`render` string; anything that rewrites
    #: ``children`` (only :func:`dedupe_dag` today) must reset it.
    _render_memo: Optional[str] = field(
        default=None, repr=False, compare=False
    )

    # ------------------------------------------------------------------

    def walk(self) -> Iterator["IRNode"]:
        """Pre-order walk, visiting each shared (CSE'd) node once."""
        seen: set[int] = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            yield node
            stack.extend(reversed(node.children))

    def render(self) -> str:
        """Compact single-line rendering, e.g. ``Assemble(GroupByJoin(...))``.

        Deterministic across runs (no object ids); shared subtrees are
        rendered once and referenced as ``&N`` afterwards so CSE merges
        show up in pass traces.
        """
        if self._render_memo is not None:
            return self._render_memo
        counts: dict[int, int] = {}
        stack = [self]
        while stack:
            node = stack.pop()
            counts[id(node)] = counts.get(id(node), 0) + 1
            if counts[id(node)] == 1:
                stack.extend(node.children)
        shared: dict[int, int] = {}

        def go(node: "IRNode") -> str:
            if id(node) in shared:
                return f"&{shared[id(node)]}"
            if counts[id(node)] > 1:
                shared[id(node)] = len(shared) + 1
                prefix = f"&{shared[id(node)]}="
            else:
                prefix = ""
            head = node.op if not node.label else f"{node.op}[{node.label}]"
            if not node.children:
                return prefix + head
            inner = ", ".join(go(child) for child in node.children)
            return f"{prefix}{head}({inner})"

        self._render_memo = go(self)
        return self._render_memo

    # ------------------------------------------------------------------
    # Fingerprints
    # ------------------------------------------------------------------

    def structural_fingerprint(self) -> str:
        """Hash of the semantic tree shape; stable across processes."""
        return _digest(self._canonical(include_identity=False))

    def identity_fingerprint(self) -> str:
        """Hash of shape + the identities of the storages read.

        Only equal for plans that would re-read the very same storage
        objects — the precondition for reusing a lowered subplan (and
        its shuffle outputs) instead of rebuilding it.
        """
        return _digest(self._canonical(include_identity=True))

    def _canonical(self, include_identity: bool) -> tuple:
        return (
            self.op,
            self.level,
            self.label,
            repr(self.sig),
            repr(self.identity) if include_identity else "",
            tuple(
                child._canonical(include_identity) for child in self.children
            ),
        )

    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe export of the DAG (shared nodes become ``ref``s)."""
        seen: dict[int, str] = {}

        def go(node: "IRNode") -> dict[str, Any]:
            key = seen.get(id(node))
            if key is not None:
                return {"ref": key}
            seen[id(node)] = key = f"n{len(seen)}"
            out: dict[str, Any] = {"id": key, "op": node.op, "level": node.level}
            if node.label:
                out["label"] = node.label
            if node.sig:
                out["sig"] = [_json_safe(part) for part in node.sig]
            annotations = {
                name: _json_safe(value)
                for name, value in sorted(node.attrs.items())
                if name in _EXPORTED_ATTRS
            }
            if annotations:
                out["attrs"] = annotations
            if node.children:
                out["children"] = [go(child) for child in node.children]
            return out

        return go(self)


#: Node attributes worth exporting in ``to_dict`` (the rest is opaque
#: lowering payload: closures, storages, analysis objects).
_EXPORTED_ATTRS = {
    "rule", "strategy", "storage", "dims", "classes", "partitioner",
    "stats", "tile_size", "monoid", "builder", "cse", "cse_merged",
    "adaptive_install", "record_estimate", "reusable", "sparse",
    "fingerprint", "fused_ops",
}


def _digest(payload: Any) -> str:
    return hashlib.sha1(repr(payload).encode()).hexdigest()[:16]


def _json_safe(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(part) for part in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return str(value)


# ----------------------------------------------------------------------
# Construction helpers
# ----------------------------------------------------------------------


def partitioner_signature(partitioner: Any) -> Any:
    """Repr-stable description of a partitioner for node signatures."""
    if partitioner is None:
        return None
    return (type(partitioner).__name__,) + tuple(
        sorted((k, repr(v)) for k, v in vars(partitioner).items())
    )


def scan_storage_node(name: str, storage: Any, level: str = PHYSICAL) -> IRNode:
    """A ``Scan`` leaf over one named environment binding.

    Captures the storage's class, dimensions, tile partitioning, and
    density statistics in the signature (they steer plan choice), and
    the storage's object identity in ``identity`` (it gates reuse).
    """
    sig: tuple = (type(storage).__name__,)
    attrs: dict[str, Any] = {"storage": type(storage).__name__}
    for attr in ("rows", "cols", "length", "tile_size"):
        dim = getattr(storage, attr, None)
        if isinstance(dim, int):
            sig += ((attr, dim),)
    tiles = getattr(storage, "tiles", None)
    if tiles is None:
        tiles = getattr(storage, "blocks", None)
    if tiles is not None and hasattr(tiles, "num_partitions"):
        part_sig = partitioner_signature(tiles.partitioner)
        sig += (("partitions", tiles.num_partitions), ("partitioner", part_sig))
        attrs["partitioner"] = part_sig
    stats = getattr(storage, "stats", None)
    if stats is not None:
        density = getattr(stats, "density", None)
        block_density = getattr(stats, "block_density", None)
        if density is not None:
            sig += (("density", density, block_density),)
            attrs["stats"] = str(stats)
    return IRNode(
        op=OP_SCAN,
        level=level,
        sig=sig,
        identity=(id(storage),),
        attrs=attrs,
        label=name,
    )


def scan_gen_node(gen: Any, level: str = PHYSICAL) -> IRNode:
    """A ``Scan`` leaf for one resolved tiled generator.

    ``gen`` is a :class:`~repro.planner.tiling.ResolvedGen`; its axis
    classes and dimensions are recorded as node attributes so the tree
    carries the tiling facts the rules decided with.
    """
    name = "?"
    if gen.index_vars:
        name = ",".join(gen.index_vars)
    node = scan_storage_node(name, gen.storage, level=level)
    node.sig += (
        ("axes", tuple(gen.axis_classes)),
        ("dims", tuple(gen.axis_dims)),
        ("sparse", gen.sparse),
        ("stats", gen.stats.density, gen.stats.block_density),
    )
    node.attrs["classes"] = tuple(gen.axis_classes)
    node.attrs["dims"] = tuple(gen.axis_dims)
    node.attrs["sparse"] = gen.sparse
    node.attrs["stats"] = str(gen.stats)
    return node


@dataclass
class PassTraceEntry:
    """One pass's before/after record, kept on the finished plan."""

    name: str
    note: str = ""
    changed: bool = False
    before: str = ""
    after: str = ""

    def summary(self) -> str:
        text = f"{self.name}: {self.note or 'no change'}"
        return text + (" [rewrote plan]" if self.changed else "")

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "note": self.note,
            "changed": self.changed,
            "before": self.before,
            "after": self.after,
        }


def dedupe_dag(root: IRNode) -> tuple[IRNode, int]:
    """Merge structurally *and* identity-equal subtrees into shared nodes.

    Returns the (possibly rewritten) root and the number of subtree
    occurrences that now reference a previously seen node.  Only safe
    when equal fingerprints mean "reads the same storages", which
    :meth:`IRNode.identity_fingerprint` guarantees.
    """
    canon: dict[str, IRNode] = {}
    merged = 0

    def go(node: IRNode) -> IRNode:
        nonlocal merged
        node.children = tuple(go(child) for child in node.children)
        node._render_memo = None
        key = node.identity_fingerprint()
        kept = canon.get(key)
        if kept is None:
            canon[key] = node
            return node
        if kept is not node:
            merged += 1
        return kept

    return go(root), merged
