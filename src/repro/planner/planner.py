"""Planner dispatch: choose a translation rule for a query.

Order of preference for a tiled-builder comprehension over tiled inputs
(mirroring the paper's Section 5):

1. group-by-join family (5.4) — when the pattern matches, the *cost
   model* (:mod:`repro.planner.cost`) picks the cheapest of SUMMA
   replication, broadcasting either side, or the 5.3 join+group-by;
2. tiled reduce (5.3) — group-by with combinable aggregations;
3. preserve-tiling (5.1) — no group-by, aligned output;
4. tiled shuffle (5.2) — no group-by, computed output indices;
5. coordinate (Section 4, Rules 13/14) — the element-level fallback;
6. local — the reference interpreter (always correct).

``PlannerOptions`` exposes overrides for the ablations:
``group_by_join=False`` reproduces the paper's "SAC" (join + group-by)
multiplication, ``group_by_join=True`` forces SUMMA replication,
``force_coordinate=True`` reproduces the coordinate-format execution of
the earlier DIABLO system; the default (``None``) lets the cost model
decide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..comprehension.ast import (
    BuilderApp, Comprehension, Expr, Generator, Reduce, Var,
)
from ..comprehension.errors import SacPlanError
from ..comprehension.interpreter import Interpreter
from ..comprehension.monoids import monoid
from ..engine import EngineContext, RDD
from ..storage.registry import BuildContext
from ..storage.sparse_tiled import SparseTiledMatrix
from ..storage.tiled import TiledMatrix, TiledVector
from .analysis import analyze
from .cost import (
    STRATEGY_BROADCAST_LEFT, STRATEGY_BROADCAST_RIGHT, STRATEGY_REPLICATE,
    STRATEGY_TILED_REDUCE, CostEstimate, CostModel, choose_strategy,
)
from .groupby_join import (
    GbjMatch, build_broadcast_plan, build_replicate_plan, match_group_by_join,
    reconsider_join_strategy,
)
from .plan import Plan, RULE_LOCAL
from .rdd_rules import plan_coordinate
from .tiling import (
    plan_preserve, plan_shuffle, plan_tiled_reduce, resolve_tiled,
    sparse_gens_sound,
)


@dataclass
class PlannerOptions:
    """Overrides controlling rule selection (used by the ablations).

    ``group_by_join``: ``None`` (default) lets the cost model pick the
    cheapest group-by-join strategy (SUMMA replication, broadcasting one
    side, or the 5.3 join+group-by); ``True`` forces SUMMA replication
    (the pre-cost-model default); ``False`` forces the 5.3 translation.

    ``broadcast_threshold`` is an extension beyond the paper: when set
    > 0 and one side of a group-by-join has at most that many tiles, the
    whole side is broadcast to every task instead of SUMMA-replicated —
    the standard Spark map-side-join optimization, profitable for tall
    skinny factors (e.g. the factorization's rank-k matrices).  It is a
    hard override; ``0`` forbids broadcasting even in cost-based mode,
    and ``None`` (default) leaves the choice to the cost model.
    """

    group_by_join: Optional[bool] = None
    force_coordinate: bool = False
    allow_tiled: bool = True
    broadcast_threshold: Optional[int] = None


_DISTRIBUTED_BUILDERS = {"tiled", "tiled_vector", "rdd"}


def plan_query(
    expr: Expr,
    env: dict[str, Any],
    engine: Optional[EngineContext],
    build_context: BuildContext,
    options: Optional[PlannerOptions] = None,
) -> Plan:
    """Produce an executable plan for a desugared, normalized query."""
    options = options or PlannerOptions()

    if isinstance(expr, BuilderApp) and isinstance(expr.source, Comprehension):
        return _plan_builder_comp(expr, env, engine, build_context, options)

    if isinstance(expr, Reduce) and isinstance(expr.expr, Comprehension):
        inner = expr.expr
        if engine is not None and _is_distributed(inner, env):
            plan = _plan_comp(inner, env, engine, build_context, options, None, ())
            if plan is not None:
                mon = monoid(expr.monoid) if expr.monoid != "count" else None
                inner_thunk = plan.thunk

                def reduce_thunk():
                    rdd = inner_thunk()
                    assert isinstance(rdd, RDD)
                    if expr.monoid == "count":
                        return rdd.count()
                    return rdd.aggregate(mon.zero, mon.combine, mon.combine)

                return Plan(
                    rule=plan.rule,
                    description=f"{plan.description}; then total {expr.monoid}/ reduction",
                    thunk=reduce_thunk,
                    pseudocode=plan.pseudocode,
                    details=plan.details,
                    estimate=plan.estimate,
                    candidates=plan.candidates,
                )
        return _local_plan(expr, env, build_context)

    if isinstance(expr, Comprehension):
        if engine is not None and _is_distributed(expr, env):
            plan = _plan_comp(expr, env, engine, build_context, options, None, ())
            if plan is not None:
                inner_thunk = plan.thunk
                return Plan(
                    rule=plan.rule,
                    description=plan.description + "; collected to a list",
                    thunk=lambda: inner_thunk().collect(),
                    pseudocode=plan.pseudocode,
                    details=plan.details,
                    estimate=plan.estimate,
                    candidates=plan.candidates,
                )
        return _local_plan(expr, env, build_context)

    return _local_plan(expr, env, build_context)


# ----------------------------------------------------------------------


def _plan_builder_comp(
    expr: BuilderApp,
    env: dict[str, Any],
    engine: Optional[EngineContext],
    build_context: BuildContext,
    options: PlannerOptions,
) -> Plan:
    comp = expr.source
    assert isinstance(comp, Comprehension)
    distributed = expr.name in _DISTRIBUTED_BUILDERS or _is_distributed(comp, env)
    if engine is None or not distributed:
        return _local_plan(expr, env, build_context)
    args = tuple(
        Interpreter(env, build_context=build_context).evaluate(a) for a in expr.args
    )
    plan = _plan_comp(comp, env, engine, build_context, options, expr.name, args)
    if plan is not None:
        return plan
    return _local_plan(expr, env, build_context)


#: Attribute memoizing ``analyze`` on the (immutable) normalized node,
#: so a plan-cache hit re-plans without re-deriving the analysis.
_ANALYSIS_MEMO = "_sac_analysis_memo"


def _analyze_cached(comp: Comprehension):
    """``analyze(comp)`` memoized on the AST node itself.

    Nodes are frozen dataclasses and rewrites build new trees, so the
    analysis of one node never goes stale; negative results (plan
    errors) are memoized too.  Concurrent compiles may race to compute
    the same value — the write is idempotent, so last-wins is fine.
    """
    memo = getattr(comp, _ANALYSIS_MEMO, None)
    if memo is None:
        try:
            memo = analyze(comp)
        except SacPlanError as exc:
            memo = exc
        object.__setattr__(comp, _ANALYSIS_MEMO, memo)
    return None if isinstance(memo, SacPlanError) else memo


def _plan_comp(
    comp: Comprehension,
    env: dict[str, Any],
    engine: EngineContext,
    build_context: BuildContext,
    options: PlannerOptions,
    builder: Optional[str],
    args: tuple,
) -> Optional[Plan]:
    info = _analyze_cached(comp)
    if info is None:
        return None

    if not options.force_coordinate and options.allow_tiled and builder in (
        "tiled",
        "tiled_vector",
    ):
        const_env = {
            name: value
            for name, value in env.items()
            if isinstance(value, (int, float, bool))
        }
        setup = resolve_tiled(info, env, const_env)
        if setup is not None:
            # The setup carries a guard-pruned copy of the analysis; use
            # it for the fallback too (the shared memoized CompInfo must
            # stay pristine for other storages' compiles).
            info = setup.info
        if setup is not None and not sparse_gens_sound(setup):
            setup = None  # sparse semantics need the coordinate path
        if setup is not None:
            if info.group_key_vars is not None:
                plan = _plan_group_by(setup, engine, options, builder, args)
                if plan is not None:
                    return _record_estimate(plan, engine)
            else:
                plan = plan_preserve(setup, builder, args)
                if plan is not None:
                    return plan
                plan = plan_shuffle(setup, builder, args)
                if plan is not None:
                    return plan

    return plan_coordinate(info, env, engine, builder, args, build_context)


def _plan_group_by(
    setup,
    engine: EngineContext,
    options: PlannerOptions,
    builder: str,
    args: tuple,
) -> Optional[Plan]:
    """Cost-based selection among the group-by strategies.

    When the group-by-join pattern matches, every candidate (SUMMA
    replication, broadcasting either side, the 5.3 join+group-by) is
    costed against the engine's cluster spec and the cheapest one is
    built — unless an explicit override (``group_by_join``,
    ``broadcast_threshold``) forces a strategy.  The estimates are
    attached to the plan for ``explain`` and the estimated-vs-actual
    shuffle counters.
    """
    match = match_group_by_join(setup)
    candidates: dict[str, CostEstimate] = {}
    # Cost-chosen = no explicit override pinned the strategy; only then
    # may the adaptive layer second-guess the choice at execute time.
    cost_chosen = (
        options.group_by_join is None and options.broadcast_threshold is None
    )
    if match is not None:
        model = CostModel(
            engine.cluster, engine.default_parallelism,
            measured=_adaptive_measurements(engine),
        )
        candidates = model.candidates(setup, match)
        strategy = _choose_gbj_strategy(options, match, candidates)
        plan: Optional[Plan] = None
        if strategy == STRATEGY_REPLICATE:
            plan = build_replicate_plan(setup, match, builder, args)
        elif strategy in (STRATEGY_BROADCAST_LEFT, STRATEGY_BROADCAST_RIGHT):
            side = "left" if strategy == STRATEGY_BROADCAST_LEFT else "right"
            plan = build_broadcast_plan(
                setup, match, builder, args, side,
                reduce_partitions=candidates[strategy].reduce_partitions,
            )
        if plan is not None:
            _attach_estimates(plan, strategy, candidates)
            if cost_chosen and strategy == STRATEGY_REPLICATE:
                _install_adaptive_reconsideration(
                    plan, setup, match, candidates, strategy,
                    engine, builder, args,
                )
            return plan

    plan = plan_tiled_reduce(setup, builder, args)
    if plan is None and match is not None and options.group_by_join is not False:
        # The 5.3 rule has preconditions (e.g. on the head key) the
        # group-by-join does not; fall back to the always-buildable
        # SUMMA plan rather than dropping to the coordinate path.
        plan = build_replicate_plan(setup, match, builder, args)
        return _attach_estimates(plan, STRATEGY_REPLICATE, candidates)
    if plan is not None and candidates:
        _attach_estimates(plan, STRATEGY_TILED_REDUCE, candidates)
        if match is not None and cost_chosen:
            _install_adaptive_reconsideration(
                plan, setup, match, candidates, STRATEGY_TILED_REDUCE,
                engine, builder, args,
            )
    return plan


def _choose_gbj_strategy(
    options: PlannerOptions,
    match,
    candidates: dict[str, CostEstimate],
) -> str:
    """Apply the option overrides, else ask the cost model."""
    if options.group_by_join is False:
        return STRATEGY_TILED_REDUCE
    threshold = options.broadcast_threshold
    if threshold is not None and threshold > 0:
        # Legacy gating override: broadcast whichever side fits under the
        # threshold (right side preferred, matching the original
        # implementation), SUMMA replication otherwise.
        if match.tile_count("right") <= threshold:
            return STRATEGY_BROADCAST_RIGHT
        if match.tile_count("left") <= threshold:
            return STRATEGY_BROADCAST_LEFT
        return STRATEGY_REPLICATE
    if options.group_by_join is True:
        return STRATEGY_REPLICATE
    allowed = [
        STRATEGY_REPLICATE,
        STRATEGY_BROADCAST_LEFT,
        STRATEGY_BROADCAST_RIGHT,
        STRATEGY_TILED_REDUCE,
    ]
    if threshold == 0:
        allowed = [STRATEGY_REPLICATE, STRATEGY_TILED_REDUCE]
    return choose_strategy(candidates, allowed)


def _attach_estimates(
    plan: Plan, strategy: str, candidates: dict[str, CostEstimate]
) -> Plan:
    plan.candidates = candidates
    plan.estimate = candidates.get(strategy)
    plan.details["strategy"] = strategy
    if plan.estimate is not None:
        plan.details["priced_densities"] = plan.estimate.densities
    return plan


def _adaptive_measurements(engine: EngineContext) -> Optional[dict]:
    """Measured input sizes for the compile-time cost model, when the
    adaptive layer is on and has recorded any — so a query compiled
    *after* an adaptive correction prices with the measured facts and
    picks the cheap plan up front instead of re-correcting at runtime."""
    manager = getattr(engine, "adaptive", None)
    if manager is not None and manager.enabled and manager.measured_sizes:
        return manager.measured_sizes
    return None


def _install_adaptive_reconsideration(
    plan: Plan,
    setup,
    match,
    candidates: dict[str, CostEstimate],
    strategy: str,
    engine: EngineContext,
    builder: str,
    args: tuple,
) -> Plan:
    """Wrap the plan's thunk with the stage-boundary re-optimization.

    At execute time — when upstream stages have materialized and real
    sizes exist — the join strategy is reconsidered from measurements
    (:func:`~repro.planner.groupby_join.reconsider_join_strategy`) and
    a broadcast downgrade replaces the planned program if it fires.
    Every adaptive decision recorded while the plan runs (downgrades,
    but also the engine's skew splits and partition coalescing) is
    sliced onto ``plan.adaptive_decisions`` for ``explain()``.
    """
    manager = getattr(engine, "adaptive", None)
    if manager is None or not manager.enabled:
        return plan
    inner = plan.thunk

    def thunk():
        start = len(manager.decisions)
        replacement = reconsider_join_strategy(
            engine, setup, match, candidates, strategy, builder, args
        )
        if replacement is not None:
            new_thunk, new_strategy = replacement
            plan.details["adaptive_strategy"] = new_strategy
            result = new_thunk()
        else:
            result = inner()
        plan.adaptive_decisions = list(manager.decisions[start:])
        return result

    plan.thunk = thunk
    return plan


def _record_estimate(plan: Plan, engine: EngineContext) -> Plan:
    """Record the chosen estimate when the plan actually executes."""
    if plan.estimate is None:
        return plan
    inner = plan.thunk
    estimated = plan.estimate.shuffle_bytes

    def thunk():
        engine.metrics.record_estimated_shuffle(estimated)
        return inner()

    plan.thunk = thunk
    return plan


def _local_plan(
    expr: Expr, env: dict[str, Any], build_context: BuildContext
) -> Plan:
    from .local_codegen import CodegenUnsupported, compile_local
    from .plan import RULE_LOCAL_CODEGEN

    try:
        source, thunk = compile_local(expr, env, build_context)
    except CodegenUnsupported as reason:
        interpreter = Interpreter(env, build_context=build_context)
        return Plan(
            rule=RULE_LOCAL,
            description="reference in-memory evaluation (Sections 2-3)",
            thunk=lambda: interpreter.evaluate(expr),
            details={"codegen_fallback": str(reason)},
        )
    return Plan(
        rule=RULE_LOCAL_CODEGEN,
        description=(
            "generated imperative loop code (Sections 2-3): sparsifiers "
            "inlined as index loops, builders as array writes"
        ),
        thunk=thunk,
        pseudocode=source,
    )


def _is_distributed(comp: Comprehension, env: dict[str, Any]) -> bool:
    """Does any generator traverse a distributed storage?"""
    for qual in comp.qualifiers:
        if isinstance(qual, Generator) and isinstance(qual.source, Var):
            value = env.get(qual.source.name)
            if isinstance(
                value, (TiledMatrix, TiledVector, SparseTiledMatrix, RDD)
            ):
                return True
        if isinstance(qual, Generator) and isinstance(qual.source, Comprehension):
            if _is_distributed(qual.source, env):
                return True
    return False
