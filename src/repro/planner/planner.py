"""Planner driver: run the pass pipeline, then lower to an RDD program.

Order of preference for a tiled-builder comprehension over tiled inputs
(mirroring the paper's Section 5):

1. group-by-join family (5.4) — when the pattern matches, the *cost
   model* (:mod:`repro.planner.cost`) picks the cheapest of SUMMA
   replication, broadcasting either side, or the 5.3 join+group-by;
2. tiled reduce (5.3) — group-by with combinable aggregations;
3. preserve-tiling (5.1) — no group-by, aligned output;
4. tiled shuffle (5.2) — no group-by, computed output indices;
5. coordinate (Section 4, Rules 13/14) — the element-level fallback;
6. local — the reference interpreter (always correct).

The mechanics live elsewhere: :mod:`repro.planner.passes` runs the
named pass pipeline over the two-level IR (:mod:`repro.planner.ir`),
and :mod:`repro.planner.lower` turns the physical DAG into the
executable :class:`~repro.planner.plan.Plan`.  ``plan_query`` is just
the composition, so the finished plan carries the full pass trace.

``PlannerOptions`` exposes overrides for the ablations:
``group_by_join=False`` reproduces the paper's "SAC" (join + group-by)
multiplication, ``group_by_join=True`` forces SUMMA replication,
``force_coordinate=True`` reproduces the coordinate-format execution of
the earlier DIABLO system; the default (``None``) lets the cost model
decide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..comprehension.ast import Expr
from ..engine import EngineContext
from ..storage.registry import BuildContext
from .lower import lower
from .passes import (
    PassManager, PlanState, cse_enabled, default_passes, fusion_enabled,
)
from .plan import Plan


@dataclass
class PlannerOptions:
    """Overrides controlling rule selection (used by the ablations).

    ``group_by_join``: ``None`` (default) lets the cost model pick the
    cheapest group-by-join strategy (SUMMA replication, broadcasting one
    side, or the 5.3 join+group-by); ``True`` forces SUMMA replication
    (the pre-cost-model default); ``False`` forces the 5.3 translation.

    ``broadcast_threshold`` is an extension beyond the paper: when set
    > 0 and one side of a group-by-join has at most that many tiles, the
    whole side is broadcast to every task instead of SUMMA-replicated —
    the standard Spark map-side-join optimization, profitable for tall
    skinny factors (e.g. the factorization's rank-k matrices).  It is a
    hard override; ``0`` forbids broadcasting even in cost-based mode,
    and ``None`` (default) leaves the choice to the cost model.

    ``cse``: common-subplan elimination.  ``None`` (default) defers to
    the ``REPRO_CSE`` environment variable (off unless set); ``True`` /
    ``False`` pin it.  When on, identity-equal subplans are merged, the
    plan gets a reuse fingerprint the session cache can key on, and the
    plan's shuffle outputs are marked for
    :class:`~repro.engine.block_manager.BlockManager` reuse.

    ``fusion``: fused per-tile kernel codegen.  ``None`` (default)
    defers to the ``REPRO_FUSION`` environment variable (off unless
    set); ``True`` / ``False`` pin it.  When on, preserve-tiling
    MapTiles/Filter chains lower to one generated NumPy kernel per
    partition instead of N Python-level RDD hops; chains without a
    source form keep the interpreter lowering.
    """

    group_by_join: Optional[bool] = None
    force_coordinate: bool = False
    allow_tiled: bool = True
    broadcast_threshold: Optional[int] = None
    cse: Optional[bool] = None
    fusion: Optional[bool] = None

    def cache_signature(self) -> tuple:
        """Hashable identity for plan caching (every field that can
        change which plan comes out must appear here)."""
        return (
            self.group_by_join,
            self.force_coordinate,
            self.allow_tiled,
            self.broadcast_threshold,
            cse_enabled(self),
            fusion_enabled(self),
        )


def plan_state(
    expr: Expr,
    env: dict[str, Any],
    engine: Optional[EngineContext],
    build_context: BuildContext,
    options: Optional[PlannerOptions] = None,
) -> PlanState:
    """Run the pass pipeline for a normalized query, stopping short of
    lowering.

    The returned state is read-only from here on: :func:`lower` may be
    applied to it any number of times, each call constructing a fresh
    :class:`~repro.planner.plan.Plan` (and fresh RDD lineages).  That
    split is what lets the session reuse a pass-pipeline result across
    the identical recompiles of an iterative workload while keeping
    execution byte-identical to an uncached compile.
    """
    options = options or PlannerOptions()
    state = PlanState(
        expr=expr,
        env=env,
        engine=engine,
        build_context=build_context,
        options=options,
    )
    PassManager(default_passes()).run(state)
    return state


def plan_query(
    expr: Expr,
    env: dict[str, Any],
    engine: Optional[EngineContext],
    build_context: BuildContext,
    options: Optional[PlannerOptions] = None,
) -> Plan:
    """Produce an executable plan for a desugared, normalized query."""
    return lower(plan_state(expr, env, engine, build_context, options))
