"""Planner dispatch: choose a translation rule for a query.

Order of preference for a tiled-builder comprehension over tiled inputs
(mirroring the paper's Section 5):

1. group-by-join (5.4) — when enabled and the pattern matches;
2. tiled reduce (5.3) — group-by with combinable aggregations;
3. preserve-tiling (5.1) — no group-by, aligned output;
4. tiled shuffle (5.2) — no group-by, computed output indices;
5. coordinate (Section 4, Rules 13/14) — the element-level fallback;
6. local — the reference interpreter (always correct).

``PlannerOptions`` exposes the ablation switches the benchmarks use:
``group_by_join=False`` reproduces the paper's "SAC" (join + group-by)
multiplication, ``force_coordinate=True`` reproduces the coordinate-
format execution of the earlier DIABLO system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..comprehension.ast import (
    BuilderApp, Comprehension, Expr, Generator, Reduce, Var,
)
from ..comprehension.errors import SacPlanError
from ..comprehension.interpreter import Interpreter
from ..comprehension.monoids import monoid
from ..engine import EngineContext, RDD
from ..storage.registry import BuildContext
from ..storage.sparse_tiled import SparseTiledMatrix
from ..storage.tiled import TiledMatrix, TiledVector
from .analysis import analyze
from .groupby_join import plan_group_by_join
from .plan import Plan, RULE_LOCAL
from .rdd_rules import plan_coordinate
from .tiling import (
    plan_preserve, plan_shuffle, plan_tiled_reduce, resolve_tiled,
    sparse_gens_sound,
)


@dataclass
class PlannerOptions:
    """Switches controlling rule selection (used by the ablations).

    ``broadcast_threshold`` is an extension beyond the paper: when > 0
    and one side of a group-by-join has at most that many tiles, the
    whole side is broadcast to every task instead of SUMMA-replicated —
    the standard Spark map-side-join optimization, profitable for tall
    skinny factors (e.g. the factorization's rank-k matrices).
    """

    group_by_join: bool = True
    force_coordinate: bool = False
    allow_tiled: bool = True
    broadcast_threshold: int = 0


_DISTRIBUTED_BUILDERS = {"tiled", "tiled_vector", "rdd"}


def plan_query(
    expr: Expr,
    env: dict[str, Any],
    engine: Optional[EngineContext],
    build_context: BuildContext,
    options: Optional[PlannerOptions] = None,
) -> Plan:
    """Produce an executable plan for a desugared, normalized query."""
    options = options or PlannerOptions()

    if isinstance(expr, BuilderApp) and isinstance(expr.source, Comprehension):
        return _plan_builder_comp(expr, env, engine, build_context, options)

    if isinstance(expr, Reduce) and isinstance(expr.expr, Comprehension):
        inner = expr.expr
        if engine is not None and _is_distributed(inner, env):
            plan = _plan_comp(inner, env, engine, build_context, options, None, ())
            if plan is not None:
                mon = monoid(expr.monoid) if expr.monoid != "count" else None
                inner_thunk = plan.thunk

                def reduce_thunk():
                    rdd = inner_thunk()
                    assert isinstance(rdd, RDD)
                    if expr.monoid == "count":
                        return rdd.count()
                    return rdd.aggregate(mon.zero, mon.combine, mon.combine)

                return Plan(
                    rule=plan.rule,
                    description=f"{plan.description}; then total {expr.monoid}/ reduction",
                    thunk=reduce_thunk,
                    pseudocode=plan.pseudocode,
                    details=plan.details,
                )
        return _local_plan(expr, env, build_context)

    if isinstance(expr, Comprehension):
        if engine is not None and _is_distributed(expr, env):
            plan = _plan_comp(expr, env, engine, build_context, options, None, ())
            if plan is not None:
                inner_thunk = plan.thunk
                return Plan(
                    rule=plan.rule,
                    description=plan.description + "; collected to a list",
                    thunk=lambda: inner_thunk().collect(),
                    pseudocode=plan.pseudocode,
                    details=plan.details,
                )
        return _local_plan(expr, env, build_context)

    return _local_plan(expr, env, build_context)


# ----------------------------------------------------------------------


def _plan_builder_comp(
    expr: BuilderApp,
    env: dict[str, Any],
    engine: Optional[EngineContext],
    build_context: BuildContext,
    options: PlannerOptions,
) -> Plan:
    comp = expr.source
    assert isinstance(comp, Comprehension)
    distributed = expr.name in _DISTRIBUTED_BUILDERS or _is_distributed(comp, env)
    if engine is None or not distributed:
        return _local_plan(expr, env, build_context)
    args = tuple(
        Interpreter(env, build_context=build_context).evaluate(a) for a in expr.args
    )
    plan = _plan_comp(comp, env, engine, build_context, options, expr.name, args)
    if plan is not None:
        return plan
    return _local_plan(expr, env, build_context)


def _plan_comp(
    comp: Comprehension,
    env: dict[str, Any],
    engine: EngineContext,
    build_context: BuildContext,
    options: PlannerOptions,
    builder: Optional[str],
    args: tuple,
) -> Optional[Plan]:
    try:
        info = analyze(comp)
    except SacPlanError:
        return None

    if not options.force_coordinate and options.allow_tiled and builder in (
        "tiled",
        "tiled_vector",
    ):
        const_env = {
            name: value
            for name, value in env.items()
            if isinstance(value, (int, float, bool))
        }
        setup = resolve_tiled(info, env, const_env)
        if setup is not None and not sparse_gens_sound(setup):
            setup = None  # sparse semantics need the coordinate path
        if setup is not None:
            if info.group_key_vars is not None:
                if options.group_by_join:
                    plan = plan_group_by_join(
                        setup, builder, args,
                        broadcast_threshold=options.broadcast_threshold,
                    )
                    if plan is not None:
                        return plan
                plan = plan_tiled_reduce(setup, builder, args)
                if plan is not None:
                    return plan
            else:
                plan = plan_preserve(setup, builder, args)
                if plan is not None:
                    return plan
                plan = plan_shuffle(setup, builder, args)
                if plan is not None:
                    return plan

    return plan_coordinate(info, env, engine, builder, args, build_context)


def _local_plan(
    expr: Expr, env: dict[str, Any], build_context: BuildContext
) -> Plan:
    from .local_codegen import CodegenUnsupported, compile_local
    from .plan import RULE_LOCAL_CODEGEN

    try:
        source, thunk = compile_local(expr, env, build_context)
    except CodegenUnsupported as reason:
        interpreter = Interpreter(env, build_context=build_context)
        return Plan(
            rule=RULE_LOCAL,
            description="reference in-memory evaluation (Sections 2-3)",
            thunk=lambda: interpreter.evaluate(expr),
            details={"codegen_fallback": str(reason)},
        )
    return Plan(
        rule=RULE_LOCAL_CODEGEN,
        description=(
            "generated imperative loop code (Sections 2-3): sparsifiers "
            "inlined as index loops, builders as array writes"
        ),
        thunk=thunk,
        pseudocode=source,
    )


def _is_distributed(comp: Comprehension, env: dict[str, Any]) -> bool:
    """Does any generator traverse a distributed storage?"""
    for qual in comp.qualifiers:
        if isinstance(qual, Generator) and isinstance(qual.source, Var):
            value = env.get(qual.source.name)
            if isinstance(
                value, (TiledMatrix, TiledVector, SparseTiledMatrix, RDD)
            ):
                return True
        if isinstance(qual, Generator) and isinstance(qual.source, Comprehension):
            if _is_distributed(qual.source, env):
                return True
    return False
