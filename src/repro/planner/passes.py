"""The pass pipeline: named, traced rewrites from query to physical IR.

``plan_query`` used to be one monolithic dispatch that recognized,
decided, and built in a single motion.  It is now a
:class:`PassManager` running a fixed sequence of named passes over a
:class:`PlanState`:

1. **normalize-bridge** — classify the normalized expression (builder
   comprehension, total reduction, bare comprehension, local), evaluate
   builder arguments, run the comprehension analysis, and derive the
   *logical* operator DAG;
2. **tiling-resolution** — resolve generators against tiled storages
   (index classes, grids, density stats) when the tiled rules may apply;
3. **strategy-selection** — run the translation rules in the paper's
   preference order and, for group-by-joins, the cost model; emits the
   *physical* operator DAG;
4. **adaptive-install** — mark cost-chosen plans for the stage-boundary
   re-optimization hook;
5. **cse** — common-subplan elimination: merge identity-equal subtrees
   and mark the plan's shuffle outputs for
   :class:`~repro.engine.block_manager.BlockManager` reuse (off by
   default; ``PlannerOptions(cse=True)`` or ``REPRO_CSE=1``);
6. **fusion** — collapse a preserve-tiling MapTiles/Filter chain into a
   single :data:`~repro.planner.ir.OP_FUSED_KERNEL` node carrying the
   fingerprinted per-partition source
   :func:`~repro.planner.codegen.generate_fused_kernel` emitted, so the
   lowering runs one generated NumPy hop per tile instead of N
   Python-level RDD hops (off by default; ``PlannerOptions(fusion=True)``
   or ``REPRO_FUSION=1``; chains with no source form keep the
   interpreter lowering).

Every pass records a :class:`~repro.planner.ir.PassTraceEntry` with the
physical DAG rendered before and after, so ``Plan.explain()`` can show
*how* a plan came to be, and golden tests can pin the pipeline down.
Passes only decide and annotate — no RDD is constructed here; that is
:mod:`repro.planner.lower`'s job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

from ..comprehension.ast import (
    BuilderApp, Comprehension, Expr, Generator, Reduce, Var, to_source,
)
from ..comprehension.errors import SacPlanError
from ..comprehension.interpreter import Interpreter
from ..engine import EngineContext, RDD, env_flag
from ..storage.registry import BuildContext
from ..storage.sparse_tiled import SparseTiledMatrix
from ..storage.tiled import TiledMatrix, TiledVector
from .analysis import analyze
from .cost import (
    STRATEGY_BROADCAST_LEFT, STRATEGY_BROADCAST_RIGHT, STRATEGY_REPLICATE,
    STRATEGY_TILED_REDUCE, CostEstimate, CostModel, choose_strategy,
)
from .codegen import generate_fused_kernel
from .groupby_join import emit_broadcast, emit_replicate, match_group_by_join
from .ir import (
    IRNode, LOGICAL, OP_COLLECT, OP_FILTER, OP_FUSED_KERNEL, OP_GROUP_BY,
    OP_MAP_TILES, OP_REDUCE, PassTraceEntry, dedupe_dag, scan_storage_node,
)
from .kernels import KernelUnsupported
from .plan import RULE_PRESERVE_TILING
from .rdd_rules import emit_coordinate
from .tiling import (
    emit_preserve, emit_shuffle, emit_tiled_reduce, resolve_tiled,
    sparse_gens_sound,
)

if TYPE_CHECKING:  # pragma: no cover - types only
    from .planner import PlannerOptions


#: Builders whose results live on the engine even when the inputs do not.
_DISTRIBUTED_BUILDERS = {"tiled", "tiled_vector", "rdd"}


def cse_enabled(options: "PlannerOptions") -> bool:
    """Is common-subplan elimination on for this compile?

    ``PlannerOptions.cse`` wins when set; otherwise the ``REPRO_CSE``
    environment variable decides, and the default is **off** so every
    plan choice and counter stays identical to the pre-IR planner.
    """
    if options.cse is not None:
        return options.cse
    return env_flag("REPRO_CSE", False)


def fusion_enabled(options: "PlannerOptions") -> bool:
    """Is fused per-tile kernel codegen on for this compile?

    ``PlannerOptions.fusion`` wins when set; otherwise the
    ``REPRO_FUSION`` environment variable decides, and the default is
    **off** so lowered programs stay byte-identical to the interpreter
    chains.
    """
    if options.fusion is not None:
        return options.fusion
    return env_flag("REPRO_FUSION", False)


@dataclass
class PlanState:
    """Everything the passes read and write while planning one query."""

    expr: Expr
    env: dict[str, Any]
    engine: Optional[EngineContext]
    build_context: BuildContext
    options: "PlannerOptions"
    #: "local" until the bridge proves the query distributed.
    kind: str = "local"
    #: How the physical plan's result re-enters the driver: ``None``
    #: (builder result), ``"reduce"`` (total ⊕/ aggregation), or
    #: ``"collect"`` (bare comprehension collected to a list).
    wrapper: Optional[str] = None
    reduce_monoid: Optional[str] = None
    comp: Optional[Comprehension] = None
    builder: Optional[str] = None
    args: tuple = ()
    info: Any = None
    setup: Any = None
    logical: Optional[IRNode] = None
    physical: Optional[IRNode] = None
    trace: list[PassTraceEntry] = field(default_factory=list)


PassFn = Callable[[PlanState], str]


class PassManager:
    """Run named passes in order, recording a trace entry for each."""

    def __init__(self, passes: list[tuple[str, PassFn]]):
        self.passes = passes

    def run(self, state: PlanState) -> PlanState:
        # Each pass's "after" rendering doubles as the next pass's
        # "before" — passes are the only writers of ``state.physical``.
        before = state.physical.render() if state.physical else ""
        for name, fn in self.passes:
            note = fn(state)
            after = state.physical.render() if state.physical else ""
            state.trace.append(PassTraceEntry(
                name=name,
                note=note,
                changed=before != after,
                before=before,
                after=after,
            ))
            before = after
        return state


def default_passes() -> list[tuple[str, PassFn]]:
    return [
        ("normalize-bridge", pass_normalize_bridge),
        ("tiling-resolution", pass_tiling_resolution),
        ("strategy-selection", pass_strategy_selection),
        ("adaptive-install", pass_adaptive_install),
        ("cse", pass_cse),
        ("fusion", pass_fusion),
    ]


# ----------------------------------------------------------------------
# Pass 1 — normalize bridge
# ----------------------------------------------------------------------


def pass_normalize_bridge(state: PlanState) -> str:
    """Classify the normalized AST and derive the logical DAG."""
    expr, env, engine = state.expr, state.env, state.engine

    if isinstance(expr, BuilderApp) and isinstance(expr.source, Comprehension):
        comp = expr.source
        distributed = (
            expr.name in _DISTRIBUTED_BUILDERS or _is_distributed(comp, env)
        )
        if engine is None or not distributed:
            return "local evaluation (no engine or no distributed input)"
        state.comp = comp
        state.builder = expr.name
        state.args = tuple(
            Interpreter(env, build_context=state.build_context).evaluate(a)
            for a in expr.args
        )
        state.kind = "distributed"
        shape = f"builder {expr.name!r}"
    elif isinstance(expr, Reduce) and isinstance(expr.expr, Comprehension):
        if engine is None or not _is_distributed(expr.expr, env):
            return "local evaluation (no engine or no distributed input)"
        state.comp = expr.expr
        state.wrapper = "reduce"
        state.reduce_monoid = expr.monoid
        state.kind = "distributed"
        shape = f"total {expr.monoid}/ reduction"
    elif isinstance(expr, Comprehension):
        if engine is None or not _is_distributed(expr, env):
            return "local evaluation (no engine or no distributed input)"
        state.comp = expr
        state.wrapper = "collect"
        state.kind = "distributed"
        shape = "bare comprehension (collect)"
    else:
        return "local evaluation (not a comprehension query)"

    state.info = _analyze_cached(state.comp)
    if state.info is None:
        state.kind = "local"
        return f"{shape}; analysis rejected the comprehension -> local"
    state.logical = _logical_dag(state)
    return f"{shape}; {len(state.info.generators)} generator(s) analyzed"


#: Attribute memoizing ``analyze`` on the (immutable) normalized node,
#: so a plan-cache hit re-plans without re-deriving the analysis.
_ANALYSIS_MEMO = "_sac_analysis_memo"


def _analyze_cached(comp: Comprehension):
    """``analyze(comp)`` memoized on the AST node itself.

    Nodes are frozen dataclasses and rewrites build new trees, so the
    analysis of one node never goes stale; negative results (plan
    errors) are memoized too.  Concurrent compiles may race to compute
    the same value — the write is idempotent, so last-wins is fine.
    """
    memo = getattr(comp, _ANALYSIS_MEMO, None)
    if memo is None:
        try:
            memo = analyze(comp)
        except SacPlanError as exc:
            memo = exc
        object.__setattr__(comp, _ANALYSIS_MEMO, memo)
    return None if isinstance(memo, SacPlanError) else memo


def _logical_dag(state: PlanState) -> IRNode:
    """Strategy-free description of what the comprehension computes."""
    info = state.info
    scans = tuple(
        scan_storage_node(
            gen.source.name if isinstance(gen.source, Var) else f"gen{idx}",
            state.env.get(gen.source.name)
            if isinstance(gen.source, Var) else None,
            level=LOGICAL,
        )
        for idx, gen in enumerate(info.generators)
    )
    node: IRNode
    inner = scans
    if info.residual_guards:
        inner = (IRNode(
            op=OP_FILTER,
            level=LOGICAL,
            children=scans,
            sig=(("guards",
                  tuple(to_source(g) for g in info.residual_guards)),),
        ),)
    if info.group_key_vars is not None:
        node = IRNode(
            op=OP_GROUP_BY,
            level=LOGICAL,
            children=inner,
            sig=(
                ("key", tuple(to_source(e)
                              for e in (info.group_key_exprs or []))),
                ("slots", tuple(
                    (to_source(slot.expr), slot.monoid)
                    for slot in info.slots
                )),
            ),
        )
    else:
        head_key = (
            to_source(info.head_key) if info.head_key is not None else None
        )
        node = IRNode(
            op=OP_MAP_TILES,
            level=LOGICAL,
            children=inner,
            sig=(
                ("key", head_key),
                ("value", to_source(info.head_value)),
            ),
            label="head",
        )
    if state.wrapper == "reduce":
        node = IRNode(
            op=OP_REDUCE,
            level=LOGICAL,
            children=(node,),
            sig=(("monoid", state.reduce_monoid),),
        )
    elif state.wrapper == "collect":
        node = IRNode(op=OP_COLLECT, level=LOGICAL, children=(node,))
    return node


# ----------------------------------------------------------------------
# Pass 2 — tiling resolution
# ----------------------------------------------------------------------


def pass_tiling_resolution(state: PlanState) -> str:
    """Resolve generators against tiled storages for the Section 5 rules."""
    if state.kind != "distributed":
        return "skipped (local plan)"
    options = state.options
    if options.force_coordinate:
        return "skipped (force_coordinate)"
    if not options.allow_tiled:
        return "skipped (tiled rules disabled)"
    if state.builder not in ("tiled", "tiled_vector"):
        return "skipped (result is not a tiled builder)"
    const_env = {
        name: value
        for name, value in state.env.items()
        if isinstance(value, (int, float, bool))
    }
    setup = resolve_tiled(state.info, state.env, const_env)
    if setup is not None:
        # The setup carries a guard-pruned copy of the analysis; use it
        # for the fallback too (the shared memoized CompInfo must stay
        # pristine for other storages' compiles).
        state.info = setup.info
    if setup is not None and not sparse_gens_sound(setup):
        setup = None  # sparse semantics need the coordinate path
        state.setup = None
        return "sparse generator semantics unsound -> coordinate path"
    state.setup = setup
    if setup is None:
        return "generators did not resolve to tiled storages"
    classes = sorted(set(setup.classes.values()))
    return (
        f"resolved {len(setup.gens)} generator(s); "
        f"index classes {classes}, tile size {setup.tile_size}"
    )


# ----------------------------------------------------------------------
# Pass 3 — strategy selection (the translation rules + cost model)
# ----------------------------------------------------------------------


def pass_strategy_selection(state: PlanState) -> str:
    """Run the rules in the paper's preference order; emit physical IR."""
    if state.kind != "distributed":
        return "skipped (local plan)"
    setup, info = state.setup, state.info
    if setup is not None:
        if info.group_key_vars is not None:
            root = _select_group_by(state)
            if root is not None:
                # Estimated-vs-actual shuffle accounting fires on the
                # cost-priced group-by family only (as before the IR).
                root.attrs["record_estimate"] = True
                state.physical = root
                return _selection_note(root)
        else:
            root = emit_preserve(setup, state.builder, state.args)
            if root is None:
                root = emit_shuffle(setup, state.builder, state.args)
            if root is not None:
                state.physical = root
                return _selection_note(root)

    root = emit_coordinate(
        info, state.env, state.engine, state.builder, state.args,
        state.build_context,
    )
    if root is None:
        state.kind = "local"
        return "no distributed rule applies -> local fallback"
    state.physical = root
    return _selection_note(root)


def _selection_note(root: IRNode) -> str:
    rule = root.attrs.get("rule", "?")
    strategy = root.attrs.get("strategy")
    if strategy:
        return f"rule {rule} (strategy {strategy})"
    return f"rule {rule}"


def _select_group_by(state: PlanState) -> Optional[IRNode]:
    """Cost-based selection among the group-by strategies.

    When the group-by-join pattern matches, every candidate (SUMMA
    replication, broadcasting either side, the 5.3 join+group-by) is
    costed against the engine's cluster spec and the cheapest one is
    emitted — unless an explicit override (``group_by_join``,
    ``broadcast_threshold``) forces a strategy.  The estimates are
    attached to the root node for ``explain`` and the
    estimated-vs-actual shuffle counters.
    """
    setup, engine, options = state.setup, state.engine, state.options
    builder, args = state.builder, state.args
    match = match_group_by_join(setup)
    candidates: dict[str, CostEstimate] = {}
    # Cost-chosen = no explicit override pinned the strategy; only then
    # may the adaptive layer second-guess the choice at execute time.
    cost_chosen = (
        options.group_by_join is None and options.broadcast_threshold is None
    )
    if match is not None:
        model = CostModel(
            engine.cluster, engine.default_parallelism,
            measured=_adaptive_measurements(engine),
            memory_limit=getattr(engine, "memory_limit", None),
        )
        candidates = model.candidates(setup, match)
        strategy = _choose_gbj_strategy(options, match, candidates)
        root: Optional[IRNode] = None
        if strategy == STRATEGY_REPLICATE:
            root = emit_replicate(setup, match, builder, args)
        elif strategy in (STRATEGY_BROADCAST_LEFT, STRATEGY_BROADCAST_RIGHT):
            side = "left" if strategy == STRATEGY_BROADCAST_LEFT else "right"
            root = emit_broadcast(
                setup, match, builder, args, side,
                reduce_partitions=candidates[strategy].reduce_partitions,
            )
        if root is not None:
            _attach_estimates(root, strategy, candidates)
            if cost_chosen and strategy == STRATEGY_REPLICATE:
                root.attrs["adaptive_candidate"] = True
            root.attrs["adaptive_match"] = match
            return root

    root = emit_tiled_reduce(setup, builder, args)
    if root is None and match is not None and options.group_by_join is not False:
        # The 5.3 rule has preconditions (e.g. on the head key) the
        # group-by-join does not; fall back to the always-buildable
        # SUMMA plan rather than dropping to the coordinate path.
        root = emit_replicate(setup, match, builder, args)
        return _attach_estimates(root, STRATEGY_REPLICATE, candidates)
    if root is not None and candidates:
        _attach_estimates(root, STRATEGY_TILED_REDUCE, candidates)
        if match is not None and cost_chosen:
            root.attrs["adaptive_candidate"] = True
            root.attrs["adaptive_match"] = match
    return root


def _choose_gbj_strategy(
    options: "PlannerOptions",
    match,
    candidates: dict[str, CostEstimate],
) -> str:
    """Apply the option overrides, else ask the cost model."""
    if options.group_by_join is False:
        return STRATEGY_TILED_REDUCE
    threshold = options.broadcast_threshold
    if threshold is not None and threshold > 0:
        # Legacy gating override: broadcast whichever side fits under the
        # threshold (right side preferred, matching the original
        # implementation), SUMMA replication otherwise.
        if match.tile_count("right") <= threshold:
            return STRATEGY_BROADCAST_RIGHT
        if match.tile_count("left") <= threshold:
            return STRATEGY_BROADCAST_LEFT
        return STRATEGY_REPLICATE
    if options.group_by_join is True:
        return STRATEGY_REPLICATE
    allowed = [
        STRATEGY_REPLICATE,
        STRATEGY_BROADCAST_LEFT,
        STRATEGY_BROADCAST_RIGHT,
        STRATEGY_TILED_REDUCE,
    ]
    if threshold == 0:
        allowed = [STRATEGY_REPLICATE, STRATEGY_TILED_REDUCE]
    return choose_strategy(candidates, allowed)


def _attach_estimates(
    root: IRNode, strategy: str, candidates: dict[str, CostEstimate]
) -> IRNode:
    root.attrs["candidates"] = candidates
    root.attrs["estimate"] = candidates.get(strategy)
    root.attrs["strategy"] = strategy
    details = root.attrs.setdefault("details", {})
    details["strategy"] = strategy
    if root.attrs["estimate"] is not None:
        details["priced_densities"] = root.attrs["estimate"].densities
    return root


def _adaptive_measurements(engine: EngineContext) -> Optional[dict]:
    """Measured input sizes for the compile-time cost model, when the
    adaptive layer is on and has recorded any — so a query compiled
    *after* an adaptive correction prices with the measured facts and
    picks the cheap plan up front instead of re-correcting at runtime."""
    manager = getattr(engine, "adaptive", None)
    if manager is not None and manager.enabled and manager.measured_sizes:
        return manager.measured_sizes
    return None


# ----------------------------------------------------------------------
# Pass 4 — adaptive hook installation
# ----------------------------------------------------------------------


def pass_adaptive_install(state: PlanState) -> str:
    """Mark cost-chosen plans for stage-boundary re-optimization."""
    root = state.physical
    if root is None:
        return "skipped (local plan)"
    if not root.attrs.get("adaptive_candidate"):
        return "not a cost-chosen group-by-join candidate"
    manager = getattr(state.engine, "adaptive", None)
    if manager is None or not manager.enabled:
        return "adaptive execution disabled on the engine"
    root.attrs["adaptive_install"] = True
    return (
        f"re-optimization hook armed for strategy "
        f"{root.attrs.get('strategy', '?')}"
    )


# ----------------------------------------------------------------------
# Pass 5 — common-subplan elimination
# ----------------------------------------------------------------------


def pass_cse(state: PlanState) -> str:
    """Merge identity-equal subtrees; mark shuffle outputs reusable."""
    root = state.physical
    if root is None:
        return "skipped (local plan)"
    if not cse_enabled(state.options):
        return "disabled (enable with PlannerOptions(cse=True) or REPRO_CSE=1)"
    root, merged = dedupe_dag(root)
    root.attrs["cse"] = True
    root.attrs["cse_merged"] = merged
    state.physical = root
    return (
        f"{merged} duplicate subplan(s) merged; "
        "shuffle outputs marked for cross-query reuse"
    )


# ----------------------------------------------------------------------
# Pass 6 — fused per-tile kernel codegen
# ----------------------------------------------------------------------


def pass_fusion(state: PlanState) -> str:
    """Collapse a preserve-tiling chain into one generated kernel node.

    Only rewrites plans the lowering executes as a MapTiles/Filter chain
    of elementwise Python hops (rule ``preserve-tiling``); every other
    rule keeps its shape.  When the chain has no source form
    (:class:`KernelUnsupported`), the interpreter chain stays in place
    for exactly this query — a per-chain fallback, not a global switch.
    """
    root = state.physical
    if root is None:
        return "skipped (local plan)"
    if not fusion_enabled(state.options):
        return (
            "disabled (enable with PlannerOptions(fusion=True) or "
            "REPRO_FUSION=1)"
        )
    if root.attrs.get("rule") != RULE_PRESERVE_TILING:
        return (
            f"no fusible MapTiles/Filter chain "
            f"(rule {root.attrs.get('rule', '?')})"
        )
    payload = root.attrs["payload"]
    try:
        fused = generate_fused_kernel(
            payload["setup"], payload["out_classes"],
            payload["builder"], payload["args"],
        )
    except KernelUnsupported as exc:
        return f"kernel codegen unsupported ({exc}); interpreter chain kept"

    # Splice the FusedKernel node over the MapTiles (and Filter) chain;
    # the scans stay as its children so storage identities — and with
    # them CSE/reuse fingerprints — are preserved.
    mapped = root.children[0]
    chain = [mapped]
    inner = mapped.children
    if len(inner) == 1 and inner[0].op == OP_FILTER:
        chain.append(inner[0])
        inner = inner[0].children
    chain_ids = [
        f"{node.op}[{node.label}]" if node.label else node.op
        for node in chain
    ]
    node = IRNode(
        op=OP_FUSED_KERNEL,
        children=inner,
        sig=(
            ("fingerprint", fused.fingerprint),
            ("mode", fused.mode),
            ("fused", tuple(chain_ids)),
        ),
        attrs={
            "fingerprint": fused.fingerprint,
            "fused_ops": list(chain_ids),
            "source": fused.source,
        },
        label="fused kernel",
    )
    root.children = (node,)
    root._render_memo = None
    root.attrs["fused_kernel"] = {
        "nodes": list(chain_ids),
        "fingerprint": fused.fingerprint,
        "mode": fused.mode,
        "source": fused.source,
    }
    root.attrs.setdefault("details", {})["fused_kernel"] = fused.fingerprint
    state.physical = root
    return (
        f"fused {len(chain)} tile operator(s) into kernel "
        f"{fused.fingerprint} (mode {fused.mode})"
    )


# ----------------------------------------------------------------------


def _is_distributed(comp: Comprehension, env: dict[str, Any]) -> bool:
    """Does any generator traverse a distributed storage?"""
    for qual in comp.qualifiers:
        if isinstance(qual, Generator) and isinstance(qual.source, Var):
            value = env.get(qual.source.name)
            if isinstance(
                value, (TiledMatrix, TiledVector, SparseTiledMatrix, RDD)
            ):
                return True
        if isinstance(qual, Generator) and isinstance(qual.source, Comprehension):
            if _is_distributed(qual.source, env):
                return True
    return False
