"""Human-readable code reports for compiled queries.

The paper's system emits Scala source at compile time; the closest
useful Python analogue is an inspectable report: the query, its
desugared and normalized forms, the chosen translation rule, and the
Spark-like pseudocode of the generated program.  ``explain`` produces
that report; ``SacSession.explain`` exposes it to users.
"""

from __future__ import annotations

from typing import Optional

from ..comprehension.ast import Expr, to_source
from .plan import Plan


def explain(
    plan: Plan,
    original: Optional[Expr] = None,
    normalized: Optional[Expr] = None,
) -> str:
    """Render a full compilation report for one query."""
    sections = []
    if original is not None:
        sections.append("query:\n  " + to_source(original))
    if normalized is not None and normalized != original:
        sections.append("normalized:\n  " + to_source(normalized))
    sections.append(plan.explain())
    return "\n".join(sections)
