"""Code generation: fused per-tile kernels and human-readable reports.

The paper's system emits Scala source at compile time; this module is
the Python analogue, in two parts:

* :func:`generate_fused_kernel` — turns one preserve-tiling chain
  (MapTiles / Filter over scans) into the *source text* of a single
  per-partition NumPy function.  The text reproduces, statement for
  statement, what :func:`repro.planner.lower._lower_preserve` and
  ``_result_storage`` do across five or six Python-level RDD hops —
  coordinate projection, index grids, tile realignment, the vectorized
  head value, guard masks, and boundary clipping — so a fused run is
  bit-identical to the interpreted chain while paying one hop per tile.
  Expressions render through
  :func:`repro.planner.kernels.emit_vectorized_source`, which calls the
  same ufuncs ``compile_vectorized`` dispatches to.

* :func:`explain` — the inspectable compilation report ``SacSession``
  exposes to users.

Generated sources are fingerprinted (sha1 of the text) and compiled at
most once per fingerprint through the bounded :class:`KernelCache`;
lookups report hit/miss counters into the engine's
:class:`~repro.engine.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

import numpy as np

from ..comprehension.ast import Expr, free_vars, to_source
from .kernels import KernelUnsupported, _div, emit_vectorized_source
from .plan import Plan


# ----------------------------------------------------------------------
# Fused per-partition kernel generation
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FusedKernel:
    """Source text of one fused chain, plus its cache identity.

    ``mode`` records the record format the generated function consumes:
    ``"tiles"`` iterates a generator's raw ``(coords, tile)`` records
    (the whole single-generator chain collapsed to one hop), while
    ``"joined"`` iterates ``(out_coords, (tile, ...))`` records after
    the tile join (compute + clip fused, the join untouched).
    """

    source: str
    fingerprint: str
    mode: str


class _Emitter:
    """Tiny indented line buffer (the ``local_codegen`` idiom)."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.depth = 0

    def emit(self, text: str = "") -> None:
        self.lines.append("    " * self.depth + text if text else "")


def generate_fused_kernel(
    setup: Any,
    out_classes: Sequence[int],
    builder: str,
    args: tuple,
) -> FusedKernel:
    """Emit the per-partition source for one preserve-tiling chain.

    Raises :class:`KernelUnsupported` when any piece of the chain has no
    source form — the caller (the ``fusion`` pass) then leaves the
    interpreter chain in place for exactly that query.
    """
    info = setup.info
    gens = setup.gens
    n = setup.tile_size
    if builder == "tiled":
        declared = (int(args[0]), int(args[1]))
    elif builder == "tiled_vector":
        declared = (int(args[0]),)
    else:
        raise KernelUnsupported(f"builder {builder!r}")
    if len(declared) != len(out_classes):
        raise KernelUnsupported("output rank mismatch")

    position = {cls: pos for pos, cls in enumerate(out_classes)}
    identity = list(range(len(out_classes)))
    axis_maps = [
        [position[cls] for cls in gen.axis_classes] for gen in gens
    ]

    used = free_vars(info.head_value)
    for guard in info.residual_guards:
        used |= free_vars(guard)
    used_index_vars = sorted(
        var for var, cls in setup.classes.items()
        if var in used and cls in position
    )
    needs_grids = bool(used_index_vars) or any(
        axis_map != identity for axis_map in axis_maps
    )

    # Variable spellings inside the generated scope.  Constants are
    # embedded as literals (repr round-trips exactly for the scalar
    # types ``const_env`` holds), so the fingerprint distinguishes
    # kernels closed over different constants; tile-local bindings
    # shadow constants exactly as the interpreter's env merge does.
    names: dict[str, str] = {
        name: repr(value) for name, value in setup.const_env.items()
    }
    for slot, var in enumerate(used_index_vars):
        names[var] = f"_ix{slot}"
    value_names: dict[int, str] = {}
    for k, gen in enumerate(gens):
        if gen.value_var is not None and gen.value_var in used:
            names[gen.value_var] = value_names[k] = f"_v{k}"

    value_src = emit_vectorized_source(info.head_value, names)
    mask_srcs = [
        emit_vectorized_source(guard, names)
        for guard in info.residual_guards
    ]

    mode = "tiles" if len(gens) == 1 else "joined"
    out = _Emitter()
    out.emit("def _fused_partition(_part):")
    out.depth += 1
    out.emit("_out = []")
    out.emit("_append = _out.append")

    if mode == "tiles":
        gen = gens[0]
        # Output coordinate = projection of the tile coordinate; a
        # repeated class (e.g. an ``i == j`` diagonal) must agree on
        # both axes or the tile contributes nothing.
        first_axis: dict[int, int] = {}
        conflicts: list[tuple[int, int]] = []
        for axis, cls in enumerate(gen.axis_classes):
            pos = position[cls]
            if pos in first_axis:
                conflicts.append((axis, first_axis[pos]))
            else:
                first_axis[pos] = axis
        if set(first_axis) != set(identity):
            raise KernelUnsupported("output dimension not bound by the scan")
        out.emit("for _coords, _t0 in _part:")
        out.depth += 1
        for axis, first in conflicts:
            out.emit(f"if _coords[{axis}] != _coords[{first}]:")
            out.emit("    continue")
        for pos in identity:
            out.emit(f"_k{pos} = _coords[{first_axis[pos]}]")
    else:
        out.emit("for _oc, _tiles in _part:")
        out.depth += 1
        for pos in identity:
            out.emit(f"_k{pos} = _oc[{pos}]")

    # Tiles wholly outside the declared output are dropped either way;
    # skipping their compute changes nothing observable.
    drop = " or ".join(
        f"_k{pos} * {n} >= {declared[pos]}" for pos in identity
    )
    out.emit(f"if {drop}:")
    out.emit("    continue")

    # The kernels evaluate at the traversed extent (input dimensions),
    # exactly like ``_tile_shape``; trimming to the declared output
    # happens after, like ``_result_storage``.
    extents = ", ".join(
        f"min({n}, {setup.class_dim[out_classes[pos]]} - _k{pos} * {n})"
        for pos in identity
    )
    if len(identity) == 1:
        extents += ","
    out.emit(f"_shape = ({extents})")
    if needs_grids:
        out.emit("_g = np.indices(_shape)")
    for slot, var in enumerate(used_index_vars):
        pos = position[setup.classes[var]]
        out.emit(f"_ix{slot} = _g[{pos}] + _k{pos} * {n}")
    for k, gen in enumerate(gens):
        name = value_names.get(k)
        if name is None:
            continue
        tile = "_t0" if mode == "tiles" else f"_tiles[{k}]"
        if axis_maps[k] == identity:
            out.emit(f"{name} = {tile}")
        else:
            index = ", ".join(f"_g[{dim}]" for dim in axis_maps[k])
            out.emit(f"{name} = {tile}[{index}]")

    out.emit(f"_val = np.asarray({value_src}, dtype=np.float64)")
    out.emit("if _val.shape != _shape:")
    out.emit("    _val = np.broadcast_to(_val, _shape).copy()")
    if mask_srcs:
        out.emit("_keep = np.ones(_shape, dtype=bool)")
        for mask_src in mask_srcs:
            out.emit(f"_keep &= np.asarray({mask_src}, dtype=bool)")
        out.emit("_val = np.where(_keep, _val, 0.0)")

    trims = [
        f"min(_val.shape[{pos}], {declared[pos]} - _k{pos} * {n})"
        for pos in identity
    ]
    for pos, trim in enumerate(trims):
        out.emit(f"_h{pos} = {trim}")
    bounds = ", ".join(f"_h{pos}" for pos in identity)
    if len(identity) == 1:
        bounds += ","
    out.emit(f"if ({bounds}) != _val.shape:")
    slices = ", ".join(f":_h{pos}" for pos in identity)
    out.emit(f"    _val = _val[{slices}]")
    if builder == "tiled":
        key = "(" + ", ".join(f"_k{pos}" for pos in identity) + ")"
    else:
        key = "_k0"  # TiledVector blocks are keyed by a bare int
    out.emit(f"_append(({key}, _val))")
    out.depth -= 1
    out.emit("return _out")

    source = "\n".join(out.lines) + "\n"
    fingerprint = hashlib.sha1(source.encode()).hexdigest()[:16]
    return FusedKernel(source=source, fingerprint=fingerprint, mode=mode)


# ----------------------------------------------------------------------
# Bounded kernel cache
# ----------------------------------------------------------------------


class KernelCache:
    """Compile each fused source once per fingerprint, LRU-bounded.

    Thread-safe; compilation happens outside the lock (a racing double
    compile of the same fingerprint is harmless and keeps lookups from
    serializing behind ``exec``).  Hit/miss lookups are mirrored into
    the engine's metrics when a registry is passed, so ``--metrics``
    and the benchmark harness can report kernel-cache behavior.
    """

    def __init__(self, maxsize: int = 128):
        self._maxsize = maxsize
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Callable]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(
        self,
        fingerprint: str,
        source: str,
        metrics: Optional[Any] = None,
    ) -> Callable:
        with self._lock:
            fn = self._entries.get(fingerprint)
            if fn is not None:
                self._entries.move_to_end(fingerprint)
                self.hits += 1
                if metrics is not None:
                    metrics.record_kernel_cache_hit()
                return fn
        namespace: dict[str, Any] = {"np": np, "_div": _div}
        code = compile(source, f"<sac-fused:{fingerprint}>", "exec")
        exec(code, namespace)
        fn = namespace["_fused_partition"]
        with self._lock:
            self.misses += 1
            self._entries[fingerprint] = fn
            while len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1
        if metrics is not None:
            metrics.record_kernel_cache_miss()
        return fn

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "size": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


#: Process-wide cache: fused sources are pure functions of the plan, so
#: sessions share compilations (fingerprints embed every constant).
KERNEL_CACHE = KernelCache()


def get_fused_kernel(
    fingerprint: str, source: str, metrics: Optional[Any] = None
) -> Callable:
    """The per-partition callable for one fused chain, cached."""
    return KERNEL_CACHE.get(fingerprint, source, metrics)


# ----------------------------------------------------------------------
# Compilation reports
# ----------------------------------------------------------------------


def explain(
    plan: Plan,
    original: Optional[Expr] = None,
    normalized: Optional[Expr] = None,
) -> str:
    """Render a full compilation report for one query."""
    sections = []
    if original is not None:
        sections.append("query:\n  " + to_source(original))
    # Compare *rendered* source, not AST equality: normalization
    # alpha-renames, so a tree can differ by ``==`` while printing the
    # very same text — repeating it would be noise.
    if normalized is not None and (
        original is None or to_source(normalized) != to_source(original)
    ):
        sections.append("normalized:\n  " + to_source(normalized))
    sections.append(plan.explain())
    return "\n".join(sections)
