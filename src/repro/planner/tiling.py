"""Block-array translation rules (paper Sections 5.1–5.3).

Three translations, in decreasing order of preference:

* :func:`emit_preserve` — **queries that preserve tiling** (5.1, Eq. 17):
  the output tile coordinate is a permutation/projection of the input
  tile coordinates, so tiles are joined directly and each output tile is
  computed from the matching input tiles with no shuffle beyond the join.
  Covers element-wise operations, transpose, diagonal extraction and
  broadcasts.

* :func:`emit_shuffle` — **queries that do not preserve tiling** (5.2,
  Eq. 19): output indices are arbitrary (vectorizable) functions of the
  input indices.  Every tile is replicated to the set ``I_f(K)`` of
  output tiles it can contribute to, tiles are grouped per destination
  with ``groupByKey``, and each destination tile is assembled by a
  masked scatter.  Covers rotations, shifts and slicing.

* :func:`emit_tiled_reduce` — **group-by queries** (5.3): generators are
  joined tile-wise on the index equalities, each joined tile tuple
  produces a *partial* output tile (a contraction), and partial tiles
  are merged with ``reduceByKey(⊗′)`` — the monoid applied to tiles
  pairwise — followed by ``mapValues(f′)`` for the residual function.
  Covers row/column aggregations and the join+group-by matrix multiply.

All three share the same vocabulary: index variables are grouped into
*classes* (union-find over equality guards); a class corresponds to one
logical array dimension, one tile-coordinate component, and one axis of
the NumPy arrays inside tiles.

Since the plan-IR refactor these rules *emit IR nodes*
(:class:`~repro.planner.ir.IRNode`): each ``emit_*`` function performs
the rule's eligibility checks and kernel compilation, and packages what
the (separate, single) lowering site :mod:`repro.planner.lower` needs to
assemble the RDD program.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Callable, Optional, Sequence

import numpy as np

from ..comprehension.ast import Expr, Var, free_vars, to_source
from ..comprehension.errors import SacPlanError
from ..comprehension.monoids import monoid
from ..engine import RDD
from ..storage import stats as density
from ..storage.stats import DENSE, DensityStats
from ..storage.tiled import TiledMatrix, TiledVector
from .analysis import CompInfo, key_components
from .ir import (
    IRNode, OP_ASSEMBLE, OP_FILTER, OP_GROUP_BY, OP_MAP_TILES, OP_REPLICATE,
    OP_TILED_REDUCE, scan_gen_node,
)
from .kernels import (
    KernelUnsupported, compile_vectorized_cached, contract,
)
from .plan import (
    RULE_PRESERVE_TILING, RULE_TILED_REDUCE, RULE_TILED_SHUFFLE,
)


@dataclass
class ResolvedGen:
    """A generator resolved to a tiled storage."""

    index_vars: list[str]
    value_var: Optional[str]
    storage: Any  # TiledMatrix | TiledVector | SparseTiledMatrix
    axis_classes: tuple[int, ...]
    axis_dims: tuple[int, ...]
    #: CSC-tiled source: tiles densify at the kernel boundary, absent
    #: (all-zero) tiles never join, and only +-aggregations whose term
    #: annihilates on this generator's value are sound (checked by the
    #: group-by rules).
    sparse: bool = False
    #: Density statistics the storage recorded at construction (or a
    #: prior query propagated onto it); the dense upper bound when
    #: nothing is known.  The cost model scales its payload/record/flops
    #: terms by these.
    stats: DensityStats = DENSE

    @property
    def tiles(self) -> RDD:
        if isinstance(self.storage, TiledVector):
            return self.storage.blocks
        return self.storage.tiles

    def tile_records(self):
        """Tiles as ``(coords_tuple, ndarray)`` with 1-D coords tupled."""
        if isinstance(self.storage, TiledVector):
            return self.tiles.map(lambda kv: ((kv[0],), kv[1]))
        if self.sparse:
            return self.tiles.map_values(lambda tile: tile.to_numpy())
        return self.tiles


@dataclass
class TiledSetup:
    """Shared context for all tiled translations of one comprehension."""

    info: CompInfo
    gens: list[ResolvedGen]
    classes: dict[str, int]
    class_dim: dict[int, int]
    tile_size: int
    const_env: dict[str, Any]

    def grid_size(self, cls: int) -> int:
        return math.ceil(self.class_dim[cls] / self.tile_size)

    def block_extent(self, cls: int, coord: int) -> int:
        return min(self.tile_size, self.class_dim[cls] - coord * self.tile_size)


def resolve_tiled(
    info: CompInfo, env: dict[str, Any], const_env: dict[str, Any]
) -> Optional[TiledSetup]:
    """Check all generators traverse tiled storages; build the setup.

    Returns ``None`` when the comprehension is not a candidate for the
    tiled rules (non-tiled sources, range generators, ...).
    """
    if info.ranges or not info.generators:
        return None
    from ..storage.sparse_tiled import SparseTiledMatrix

    classes = info.var_class()
    gens: list[ResolvedGen] = []
    tile_size: Optional[int] = None
    class_dim: dict[int, int] = {}
    for gen in info.generators:
        if not isinstance(gen.source, Var):
            return None
        storage = env.get(gen.source.name)
        sparse = isinstance(storage, SparseTiledMatrix)
        if isinstance(storage, (TiledMatrix, SparseTiledMatrix)):
            dims = (storage.rows, storage.cols)
            size = storage.tile_size
        elif isinstance(storage, TiledVector):
            dims = (storage.length,)
            size = storage.tile_size
        else:
            return None
        if len(gen.index_vars) != len(dims):
            raise SacPlanError(
                f"generator over {gen.source.name} binds {len(gen.index_vars)} "
                f"indices but the array has {len(dims)} dimensions"
            )
        if tile_size is None:
            tile_size = size
        elif tile_size != size:
            raise SacPlanError(
                f"mixed tile sizes {tile_size} and {size}; re-tile one input"
            )
        axis_classes = tuple(classes[v] for v in gen.index_vars)
        for cls, dim in zip(axis_classes, dims):
            previous = class_dim.setdefault(cls, dim)
            if previous != dim:
                raise SacPlanError(
                    f"joined dimensions disagree: {previous} vs {dim}"
                )
        gens.append(
            ResolvedGen(
                gen.index_vars, gen.value_var, storage, axis_classes, dims,
                sparse=sparse, stats=density.of(storage),
            )
        )
    assert tile_size is not None
    # Guard pruning below mutates ``residual_guards``; the analysis is
    # memoized on the AST node and may be shared across compiles with
    # different storages, so prune a private copy.
    info = replace(info, residual_guards=list(info.residual_guards))
    setup = TiledSetup(info, gens, classes, class_dim, tile_size, const_env)
    _prune_redundant_guards(setup)
    return setup


def _prune_redundant_guards(setup: TiledSetup) -> None:
    """Drop bound guards the storage dimensions already guarantee.

    Loop-to-traversal conversion leaves guards like ``i >= 0`` and
    ``i < n``; when ``i`` is an array index variable, the first is a
    tautology and the second is provable whenever ``n`` evaluates to that
    dimension's size.
    """
    from ..comprehension.ast import BinOp, Lit
    from ..comprehension.interpreter import Interpreter

    evaluator = Interpreter(setup.const_env)

    def provable(guard) -> bool:
        if not isinstance(guard, BinOp) or not isinstance(guard.left, Var):
            return False
        var = guard.left.name
        cls = setup.classes.get(var)
        if cls is None:
            return False
        if guard.op == ">=" and guard.right == Lit(0):
            return True
        if guard.op == "<":
            try:
                bound = evaluator.evaluate(guard.right)
            except Exception:
                return False
            return isinstance(bound, (int, float)) and bound >= setup.class_dim[cls]
        return False

    setup.info.residual_guards = [
        g for g in setup.info.residual_guards if not provable(g)
    ]


def sparse_gens_sound(setup: TiledSetup) -> bool:
    """Are sparse generators sound for this comprehension's aggregations?

    A CSC-tiled source omits zero elements and whole zero tiles; treating
    its tiles densely is only equivalent when every aggregation slot (a)
    reduces with ``+`` and (b) has a term that *annihilates* when the
    sparse generator's value is zero (a bare variable or a product
    containing it), so the extra zeros contribute the identity.

    Without a group-by, a *single*-generator map is sound exactly when
    its head value annihilates on the generator's value (transpose,
    scalar multiply, slicing): absent tiles then map to absent result
    tiles, which the dense builder fills with the same zeros the values
    would have produced.  Multi-generator joins over a sparse source
    stay unsound (a missing tile would silently drop the other side's
    contribution).  Queries that fail these checks run on the
    coordinate path, which respects sparse semantics exactly.
    """
    sparse_vars = [
        gen.value_var for gen in setup.gens if gen.sparse
    ]
    if not any(gen.sparse for gen in setup.gens):
        return True
    info = setup.info
    if info.group_key_vars is None or not info.slots:
        if info.group_key_vars is not None or len(setup.gens) != 1:
            return False
        var = sparse_vars[0]
        return var is not None and _annihilates(info.head_value, var)
    for slot in info.slots:
        if slot.monoid != "+":
            return False
        for var in sparse_vars:
            if var is None or not _annihilates(slot.expr, var):
                return False
    return True


def _annihilates(expr: Expr, var: str) -> bool:
    """Is ``expr`` zero whenever ``var`` is zero?"""
    from ..comprehension.ast import BinOp

    if isinstance(expr, Var):
        return expr.name == var
    if isinstance(expr, BinOp) and expr.op == "*":
        return _annihilates(expr.left, var) or _annihilates(expr.right, var)
    return False


# ----------------------------------------------------------------------
# Helpers shared by the rules
# ----------------------------------------------------------------------


def _out_classes(setup: TiledSetup, components: Sequence[Expr]) -> Optional[list[int]]:
    """Class ids of the output dimensions, if every key part is an index var."""
    out: list[int] = []
    for component in components:
        if not isinstance(component, Var) or component.name not in setup.classes:
            return None
        out.append(setup.classes[component.name])
    if len(set(out)) != len(out):
        return None  # repeated dimension, e.g. head key (i, i)
    return out


def _try_compile(
    expr: Expr, allowed: set[str], const_env: dict[str, Any]
) -> Optional[Callable[[dict[str, Any]], Any]]:
    """Vectorized compile with constants closed over; None if unsupported."""
    if not free_vars(expr) <= allowed | set(const_env):
        return None
    try:
        kernel = compile_vectorized_cached(expr)
    except KernelUnsupported:
        return None
    return lambda tile_env: kernel({**const_env, **tile_env})


def _index_env(
    setup: TiledSetup,
    out_classes: Sequence[int],
    coords: Sequence[int],
    grids: Sequence[np.ndarray],
) -> dict[str, Any]:
    """Bind every index variable to its global-index array."""
    n = setup.tile_size
    position = {cls: p for p, cls in enumerate(out_classes)}
    env: dict[str, Any] = {}
    for var, cls in setup.classes.items():
        p = position.get(cls)
        if p is not None:
            env[var] = grids[p] + coords[p] * n
    return env


def _tile_shape(setup: TiledSetup, out_classes: Sequence[int], coords: Sequence[int]):
    return tuple(
        setup.block_extent(cls, coord) for cls, coord in zip(out_classes, coords)
    )


def _result_storage(
    setup: TiledSetup,
    builder: str,
    args: tuple,
    tiles: RDD,
    stats: Optional[DensityStats] = None,
):
    """Down-coerce a tile RDD through the requested distributed builder.

    Like the paper's builders, out-of-range indices are clipped: tiles
    wholly outside the declared dimensions are dropped and boundary
    tiles are trimmed (the declared result may be smaller than the
    traversed inputs).  ``stats`` carries the rule's propagated density
    estimate onto the result, so chained queries keep planning
    sparse-aware without running a count.
    """
    n = setup.tile_size
    if builder == "tiled":
        rows, cols = int(args[0]), int(args[1])

        def clip(record):
            (bi, bj), tile = record
            if bi * n >= rows or bj * n >= cols:
                return None
            height = min(tile.shape[0], rows - bi * n)
            width = min(tile.shape[1], cols - bj * n)
            if (height, width) != tile.shape:
                tile = tile[:height, :width]
            return (bi, bj), tile

        clipped = tiles.map(clip).filter(lambda r: r is not None)
        result = TiledMatrix(rows, cols, n, clipped)
        if stats is not None:
            result.stats = stats
        return result
    if builder == "tiled_vector":
        length = int(args[0])

        def clip_block(record):
            key, block = record
            bi = key[0] if isinstance(key, tuple) else key
            if bi * n >= length:
                return None
            extent = min(block.shape[0], length - bi * n)
            if extent != block.shape[0]:
                block = block[:extent]
            return bi, block

        blocks = tiles.map(clip_block).filter(lambda r: r is not None)
        vector = TiledVector(length, n, blocks)
        if stats is not None:
            vector.stats = stats
        return vector
    raise SacPlanError(f"tiled rules cannot build {builder!r}")


def _value_stats(setup: TiledSetup, expr: Expr) -> Optional[DensityStats]:
    """Propagate generator stats through a value expression.

    Returns ``None`` when nothing is known (all-dense inputs or an
    operator with no sparsity rule) — the caller then prices densely.
    The rules mirror :mod:`repro.storage.stats`: ``*`` annihilates
    (product bound; a dense factor passes the sparse side through),
    ``/`` preserves the numerator's support, ``+``/``-`` take the union
    bound (a dense term makes the result dense), and unary ``-`` is
    support-preserving.
    """
    from ..comprehension.ast import BinOp, UnOp

    gen_stats = {
        gen.value_var: gen.stats
        for gen in setup.gens
        if gen.value_var is not None
    }

    def walk(e: Expr) -> Optional[DensityStats]:
        if isinstance(e, Var):
            return gen_stats.get(e.name)
        if isinstance(e, UnOp) and e.op == "-":
            return walk(e.operand)
        if isinstance(e, BinOp):
            left, right = walk(e.left), walk(e.right)
            if e.op == "*":
                if left is None:
                    return right
                if right is None:
                    return left
                return density.product(left, right)
            if e.op in ("+", "-"):
                if left is None or right is None:
                    return None
                return density.union(left, right)
            if e.op == "/":
                return left
        return None

    return walk(expr)


def _drop_if_dense(stats: Optional[DensityStats]) -> Optional[DensityStats]:
    """Dense stats carry no information; keep results unannotated then."""
    if stats is None or stats.is_dense:
        return None
    return stats


def _guard_masks(
    setup: TiledSetup, allowed: set[str]
) -> Optional[list[Callable[[dict[str, Any]], Any]]]:
    masks = []
    for guard in setup.info.residual_guards:
        fn = _try_compile(guard, allowed, setup.const_env)
        if fn is None:
            return None
        masks.append(fn)
    return masks


def _all_vars(setup: TiledSetup) -> set[str]:
    names = set(setup.classes)
    for gen in setup.gens:
        if gen.value_var:
            names.add(gen.value_var)
    return names


# ----------------------------------------------------------------------
# Section 5.1 — queries that preserve tiling
# ----------------------------------------------------------------------


def assemble_sig(setup: TiledSetup, builder: str, args: tuple) -> tuple:
    """Semantic signature shared by every tiled rule's ``Assemble`` root.

    Captures the builder, its (already evaluated) arguments, the tile
    size, and the scalar constants the compiled kernels closed over.
    """
    return (
        ("builder", builder, tuple(repr(a) for a in args)),
        ("tile_size", setup.tile_size),
        ("consts", tuple(
            sorted((k, repr(v)) for k, v in setup.const_env.items())
        )),
    )


def emit_preserve(
    setup: TiledSetup, builder: str, args: tuple
) -> Optional[IRNode]:
    """Equation (17): join tiles on the output coordinate, compute locally.

    Checks eligibility and compiles the per-tile kernels; the RDD
    program (tile join + map) is assembled in :mod:`repro.planner.lower`.
    """
    info = setup.info
    if info.group_key_vars is not None or info.post_group_quals:
        return None
    components = key_components(info.head_key)
    if not components:
        return None
    out_classes = _out_classes(setup, components)
    if out_classes is None:
        return None
    out_set = set(out_classes)
    for gen in setup.gens:
        if not set(gen.axis_classes) <= out_set:
            return None  # an input dimension is not an output dimension

    allowed = _all_vars(setup)
    value_fn = _try_compile(info.head_value, allowed, setup.const_env)
    masks = _guard_masks(setup, allowed)
    if value_fn is None or masks is None:
        return None

    # Element density follows the head value; block density is further
    # capped by the sparsest generator, because the tile join is an
    # inner join — a coordinate with any absent input tile yields no
    # output tile.
    value_stats = _value_stats(setup, info.head_value) or DENSE
    block_cap = min(gen.stats.block_density for gen in setup.gens)
    out_stats = _drop_if_dense(
        DensityStats(
            value_stats.density,
            min(value_stats.block_density, block_cap),
        )
    )

    scans = tuple(scan_gen_node(gen) for gen in setup.gens)
    inner: tuple[IRNode, ...] = scans
    if info.residual_guards:
        inner = (IRNode(
            op=OP_FILTER,
            children=scans,
            sig=(("guards", tuple(to_source(g) for g in info.residual_guards)),),
            label="residual guards",
        ),)
    mapped = IRNode(
        op=OP_MAP_TILES,
        children=inner,
        sig=(
            ("head", to_source(info.head_value)),
            ("out", tuple(out_classes)),
        ),
        label="per-tile kernel",
    )
    root = IRNode(
        op=OP_ASSEMBLE,
        children=(mapped,),
        sig=assemble_sig(setup, builder, args),
        label=builder,
    )
    root.attrs.update(
        rule=RULE_PRESERVE_TILING,
        builder=builder,
        reusable=True,
        description=(
            "output tile coordinates are a projection of input tile "
            "coordinates; tiles joined directly (no re-tiling shuffle)"
        ),
        pseudocode=_preserve_pseudocode(setup, out_classes),
        details={"generators": len(setup.gens), "out_dims": len(out_classes)},
        payload=dict(
            setup=setup, builder=builder, args=args,
            out_classes=out_classes, value_fn=value_fn, masks=masks,
            out_stats=out_stats,
        ),
    )
    return root


def _preserve_pseudocode(setup: TiledSetup, out_classes: Sequence[int]) -> str:
    names = [g.index_vars for g in setup.gens]
    lines = ["Tiled(d,"]
    lines.append("  " + ".join(".join(f"{chr(65 + i)}.tiles" for i in range(len(setup.gens))) + ")" * (len(setup.gens) - 1))
    lines.append("  .map { case (K, tiles) => (K, V(tiles)) })   // V = per-tile kernel")
    lines.append(f"// generators bind {names}; output dims = classes {list(out_classes)}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Section 5.2 — queries that do not preserve tiling
# ----------------------------------------------------------------------


def emit_shuffle(
    setup: TiledSetup, builder: str, args: tuple
) -> Optional[IRNode]:
    """Equation (19): replicate tiles to I_f(K), groupByKey, scatter.

    Checks eligibility and compiles the key/value/guard kernels; the
    replicate → group → assemble RDD program is built in
    :mod:`repro.planner.lower`.
    """
    info = setup.info
    if info.group_key_vars is not None or info.post_group_quals:
        return None
    if len(setup.gens) != 1:
        return None  # multi-generator non-preserving queries fall back
    gen = setup.gens[0]
    components = key_components(info.head_key)
    if not components:
        return None

    out_dims = [int(a) for a in args]
    if len(out_dims) != len(components):
        return None
    allowed = _all_vars(setup)
    key_fns = [_try_compile(c, allowed, setup.const_env) for c in components]
    value_fn = _try_compile(info.head_value, allowed, setup.const_env)
    masks = _guard_masks(setup, allowed)
    if any(fn is None for fn in key_fns) or value_fn is None or masks is None:
        return None

    # A shuffle permutes/projects the support; the element density
    # follows the head value exactly, and the block density is carried
    # through as an estimate (index remaps move non-zeros between tiles
    # but rarely change how many tiles are touched).
    out_stats = _drop_if_dense(_value_stats(setup, info.head_value))

    scan = scan_gen_node(gen)
    replicated = IRNode(
        op=OP_REPLICATE,
        children=(scan,),
        sig=(
            ("key", tuple(to_source(c) for c in components)),
            ("dims", tuple(out_dims)),
            ("guards", tuple(to_source(g) for g in info.residual_guards)),
        ),
        label="I_f(K)",
    )
    grouped = IRNode(
        op=OP_GROUP_BY,
        children=(replicated,),
        sig=(("head", to_source(info.head_value)),),
        label="destination tiles",
    )
    root = IRNode(
        op=OP_ASSEMBLE,
        children=(grouped,),
        sig=assemble_sig(setup, builder, args),
        label=builder,
    )
    root.attrs.update(
        rule=RULE_TILED_SHUFFLE,
        builder=builder,
        reusable=True,
        description=(
            "output indices are computed from input indices; tiles "
            "replicated to their destination set I_f(K) and regrouped"
        ),
        pseudocode=(
            "Tiled(d, rdd[ (K, V) | (k, _a) <- X.tiles,\n"
            f"              K <- I_f(k),   // key = {to_source(setup.info.head_key)}\n"
            "              group by K ])"
        ),
        details={"key": to_source(info.head_key)},
        payload=dict(
            setup=setup, builder=builder, args=args, out_dims=out_dims,
            key_fns=key_fns, value_fn=value_fn, masks=masks,
            out_stats=out_stats,
        ),
    )
    return root


# ----------------------------------------------------------------------
# Section 5.3 — group-by queries on tiles
# ----------------------------------------------------------------------


def emit_tiled_reduce(
    setup: TiledSetup, builder: str, args: tuple
) -> Optional[IRNode]:
    """Join tiles on index equalities, contract per pair, reduceByKey(⊗′).

    Checks the 5.3 preconditions and compiles the partial/residual
    kernels; the tile join and reduceByKey are assembled in
    :mod:`repro.planner.lower`.
    """
    info = setup.info
    if info.group_key_vars is None or info.post_group_quals or not info.slots:
        return None
    if len(setup.gens) not in (1, 2):
        return None
    key_exprs = info.group_key_exprs or []
    out_classes = _out_classes(setup, key_exprs)
    if out_classes is None:
        return None
    # The head key must be the group-by key (Section 5.3's precondition).
    head_parts = key_components(info.head_key)
    if [to_source(e) for e in head_parts] != [
        to_source(Var(v)) for v in info.group_key_vars
    ] and [to_source(e) for e in head_parts] != [to_source(e) for e in key_exprs]:
        return None

    if setup.info.residual_guards and len(setup.gens) != 1:
        # Guards on joined generators interact with the contraction;
        # the single-generator path masks them with the monoid zero.
        return None
    slot_monoids = [monoid(slot.monoid) for slot in info.slots]
    if any(m.np_combine is None for m in slot_monoids):
        return None

    compute = _partial_tile_fn(setup, out_classes)
    if compute is None:
        return None
    finish = _residual_fn(setup, out_classes)
    out_stats = _drop_if_dense(_contraction_stats(setup, out_classes))

    scans = tuple(scan_gen_node(gen) for gen in setup.gens)
    reduce_node = IRNode(
        op=OP_TILED_REDUCE,
        children=scans,
        sig=(
            ("slots", tuple(
                (to_source(slot.expr), slot.monoid) for slot in info.slots
            )),
            ("group", tuple(to_source(e) for e in key_exprs)),
            ("residual", to_source(info.residual_value)),
            ("guards", tuple(to_source(g) for g in info.residual_guards)),
        ),
        label="join + reduceByKey(⊗′)",
    )
    root = IRNode(
        op=OP_ASSEMBLE,
        children=(reduce_node,),
        sig=assemble_sig(setup, builder, args),
        label=builder,
    )
    root.attrs.update(
        rule=RULE_TILED_REDUCE,
        builder=builder,
        reusable=True,
        description=(
            "tile-level join + per-pair partial aggregation, merged with "
            "reduceByKey over the tile monoid ⊗′"
        ),
        pseudocode=_reduce_pseudocode(setup),
        details={
            "monoids": [m.name for m in slot_monoids],
            "generators": len(setup.gens),
        },
        payload=dict(
            setup=setup, builder=builder, args=args,
            out_classes=out_classes, slot_monoids=slot_monoids,
            compute=compute, finish=finish, out_stats=out_stats,
        ),
    )
    return root


def _contraction_stats(
    setup: TiledSetup, out_classes: list[int]
) -> Optional[DensityStats]:
    """Result stats for a group-by contraction (5.3).

    Sums over the contracted dimensions fill the result: ``join_dim``
    addends per element, ``grid_join`` tile blocks per result tile.
    Two-generator joins use the matmul-shaped contraction estimate;
    single-generator projections (row/column sums) use the reduction
    rule.  Both are estimates (see :mod:`repro.storage.stats`), not
    bounds.
    """
    gen_classes: set[int] = set()
    for gen in setup.gens:
        gen_classes |= set(gen.axis_classes)
    contracted = [cls for cls in sorted(gen_classes) if cls not in out_classes]
    join_dim = 1
    grid_join = 1
    for cls in contracted:
        join_dim *= setup.class_dim[cls]
        grid_join *= setup.grid_size(cls)
    if len(setup.gens) == 2:
        return density.contraction(
            setup.gens[0].stats, setup.gens[1].stats, join_dim, grid_join
        )
    return density.reduction(setup.gens[0].stats, join_dim, grid_join)


def _partial_tile_fn(
    setup: TiledSetup, out_classes: list[int]
) -> Optional[Callable]:
    """Build the per-record partial-tile computation for every slot."""
    info = setup.info
    gens = setup.gens
    class_names = {cls: f"c{cls}" for cls in setup.class_dim}

    if len(gens) == 2:
        value_vars = (gens[0].value_var, gens[1].value_var)
        if None in value_vars:
            return None
        left_axes = tuple(class_names[c] for c in gens[0].axis_classes)
        right_axes = tuple(class_names[c] for c in gens[1].axis_classes)
        out_axes = tuple(class_names[c] for c in out_classes)
        slot_specs = []
        for slot in info.slots:
            if not free_vars(slot.expr) <= {value_vars[0], value_vars[1]}:
                return None
            slot_specs.append((slot.expr, monoid(slot.monoid)))

        def compute_pair(coords, tiles):
            left, right = tiles
            return tuple(
                contract(
                    left, right, left_axes, right_axes, out_axes,
                    term, mon, (value_vars[0], value_vars[1]),
                )
                for term, mon in slot_specs
            )

        return compute_pair

    gen = gens[0]
    contracted = [c for c in dict.fromkeys(gen.axis_classes) if c not in out_classes]
    combined = list(out_classes) + contracted
    allowed = _all_vars(setup)
    slot_fns = []
    for slot in info.slots:
        fn = _try_compile(slot.expr, allowed, setup.const_env)
        if fn is None:
            return None
        slot_fns.append((fn, monoid(slot.monoid)))
    # Residual guards mask masked-out positions to the monoid identity,
    # so they contribute nothing to the aggregation.
    masks = _guard_masks(setup, allowed)
    if masks is None:
        return None
    # Only ``+`` masks soundly: its identity (0) coincides with the dense
    # builder's fill, so fully-masked groups look like absent groups.
    if masks and any(mon.name != "+" for _fn, mon in slot_fns):
        return None

    def compute_single(coords, tiles):
        (tile,) = tiles
        shape = tuple(
            setup.block_extent(cls, coords[cls]) for cls in combined
        )
        grids = np.indices(shape)
        axis_of = {cls: i for i, cls in enumerate(combined)}
        index = tuple(grids[axis_of[cls]] for cls in gen.axis_classes)
        arr = tile[index]
        env: dict[str, Any] = {}
        if gen.value_var is not None:
            env[gen.value_var] = arr
        n = setup.tile_size
        for var, cls in setup.classes.items():
            if cls in axis_of:
                env[var] = grids[axis_of[cls]] + coords[cls] * n
        keep = None
        if masks:
            keep = np.ones(shape, dtype=bool)
            for mask_fn in masks:
                keep &= np.asarray(mask_fn(env), dtype=bool)
        reduce_axes = list(range(len(out_classes), len(combined)))
        out = []
        for fn, mon in slot_fns:
            values = np.broadcast_to(
                np.asarray(fn(env), dtype=np.float64), shape
            )
            if keep is not None:
                values = np.where(keep, values, mon.zero)
            result = values
            for axis in sorted(reduce_axes, reverse=True):
                result = mon.np_combine.reduce(result, axis=axis)
            out.append(np.asarray(result))
        return tuple(out)

    return compute_single


def _residual_fn(setup: TiledSetup, out_classes: list[int]) -> Callable:
    """The ``mapValues(f′)`` stage: residual head over aggregated tiles."""
    info = setup.info
    slot_vars = [slot.slot_var for slot in info.slots]
    residual = info.residual_value
    if (
        len(slot_vars) == 1
        and isinstance(residual, Var)
        and residual.name == slot_vars[0]
    ):
        return lambda _key, tiles: np.asarray(tiles[0], dtype=np.float64)
    kernel = compile_vectorized_cached(residual)
    const_env = setup.const_env

    def finish(key, tiles):
        shape = tiles[0].shape
        grids = np.indices(shape)
        env = dict(const_env)
        env.update(_index_env(setup, out_classes, key, grids))
        env.update(zip(slot_vars, tiles))
        return np.broadcast_to(
            np.asarray(kernel(env), dtype=np.float64), shape
        ).copy()

    return finish


def _reduce_pseudocode(setup: TiledSetup) -> str:
    if len(setup.gens) == 2:
        return (
            "Tiled(n, m,\n"
            "  A.tiles.map { case ((i,k),_a) => (k, ((i,k),_a)) }\n"
            "   .join( B.tiles.map { case ((kk,j),_b) => (kk, ((kk,j),_b)) } )\n"
            "   .map  { case (_, (((i,k),_a), ((kk,j),_b))) => ((i,j), V(_a,_b)) }\n"
            "   .reduceByKey(⊗′))   // V = per-pair contraction (einsum)"
        )
    return (
        "Tiled(n,\n"
        "  A.tiles.map { case (k, _a) => (K(k), partial(_a)) }\n"
        "   .reduceByKey(⊗′))   // partial = axis reduction inside the tile"
    )
