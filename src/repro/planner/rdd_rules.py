"""Generic RDD translation — paper Section 4, Rules (13) and (14).

This path evaluates a comprehension over *element-level* records:
every generator becomes an RDD of ``(key, value)`` coordinate pairs
(tiled inputs are sparsified distributedly, tile by tile), equality
guards between generators become RDD joins (Rule 14), and a group-by
with aggregations becomes ``map`` + ``reduceByKey(⊗)`` + ``mapValues(f)``
(Rule 13).

It is the reproduction of the paper's coordinate-format execution — the
thing Section 5 improves on — and doubles as the planner's safety net:
any comprehension too irregular for the tiled rules (e.g. the smoothing
stencil, whose group key is range-generated) still runs distributed
through here.

Records flow through the engine as plain ``dict`` environments; all
expression evaluation reuses the reference interpreter's semantics, so
this path is correct by construction for anything the interpreter
accepts.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from ..comprehension.ast import Expr, Var, to_source
from ..comprehension.errors import SacPlanError
from ..comprehension.interpreter import Interpreter
from ..comprehension.monoids import monoid
from ..engine import EngineContext, RDD
from ..storage import CooMatrix, CooVector, CsrMatrix, DenseMatrix, DenseVector
from ..storage.registry import REGISTRY, BuildContext
from ..storage.tiled import TiledMatrix, TiledVector
from .analysis import CompInfo, GenInfo
from .plan import Plan, RULE_COORDINATE


def plan_coordinate(
    info: CompInfo,
    env: dict[str, Any],
    engine: EngineContext,
    builder: Optional[str],
    args: tuple,
    build_context: BuildContext,
) -> Optional[Plan]:
    """Translate to element-level RDD operations (Rules 13/14)."""
    if info.post_group_quals:
        return None
    if info.ranges:
        return None  # data-dependent ranges need the interpreter
    sources = []
    for gen in info.generators:
        rdd = _element_rdd(gen, env, engine)
        if rdd is None:
            return None
        sources.append(rdd)

    evaluator = Interpreter(env, build_context=build_context)

    def expr_fn(expr: Expr) -> Callable[[dict], Any]:
        return lambda record: evaluator.evaluate(expr, extra_env=record)

    steps: list[str] = []

    def build() -> Any:
        rdd = _join_generators(info, sources, expr_fn, steps)
        for guard in info.residual_guards:
            fn = expr_fn(guard)
            rdd = rdd.filter(fn)
            steps.append(f".filter({to_source(guard)})")
        if info.group_key_vars is not None:
            rdd = _apply_group_by(info, rdd, expr_fn, steps)
        else:
            key_fn = expr_fn(info.head_key) if info.head_key is not None else None
            value_fn = expr_fn(info.head_value)
            if key_fn is None:
                rdd = rdd.map(value_fn)
                steps.append(".map(head)")
            else:
                rdd = rdd.map(lambda record: (key_fn(record), value_fn(record)))
                steps.append(f".map(record => ({to_source(info.head_key)}, value))")
        return _finish(rdd, engine, builder, args, build_context)

    return Plan(
        rule=RULE_COORDINATE,
        description=(
            "element-level translation: coordinate pairs joined with RDD "
            "joins (Rule 14), aggregated with reduceByKey (Rule 13)"
        ),
        thunk=build,
        pseudocode="\n".join(["<elements>"] + steps) if steps else "",
        details={"generators": len(info.generators)},
    )


# ----------------------------------------------------------------------
# Sources
# ----------------------------------------------------------------------


def _element_rdd(
    gen: GenInfo, env: dict[str, Any], engine: EngineContext
) -> Optional[RDD]:
    """An RDD of ``(key, value)`` coordinate pairs for one generator."""
    if not isinstance(gen.source, Var):
        return None
    value = env.get(gen.source.name)
    if isinstance(value, RDD):
        return value
    if isinstance(value, TiledMatrix):
        n = value.tile_size

        def explode_matrix(record):
            (bi, bj), tile = record
            for i in range(tile.shape[0]):
                for j in range(tile.shape[1]):
                    yield (bi * n + i, bj * n + j), tile[i, j].item()

        return value.tiles.flat_map(explode_matrix)
    if isinstance(value, TiledVector):
        n = value.tile_size

        def explode_vector(record):
            bi, block = record
            for i in range(block.shape[0]):
                yield bi * n + i, block[i].item()

        return value.blocks.flat_map(explode_vector)
    from ..storage.sparse_tiled import SparseTiledMatrix

    if isinstance(value, SparseTiledMatrix):
        n = value.tile_size

        def explode_sparse(record):
            (bi, bj), tile = record
            for (i, j), element in tile.sparsify():
                yield (bi * n + i, bj * n + j), element

        return value.tiles.flat_map(explode_sparse)
    if isinstance(value, (CooMatrix, CooVector, CsrMatrix, DenseMatrix, DenseVector)):
        return engine.parallelize(list(value.sparsify()))
    if isinstance(value, np.ndarray):
        return engine.parallelize(list(REGISTRY.sparsify(value)))
    if isinstance(value, list):
        return engine.parallelize(value)
    return None


# ----------------------------------------------------------------------
# Joins (Rule 14)
# ----------------------------------------------------------------------


def _join_generators(
    info: CompInfo,
    sources: list[RDD],
    expr_fn: Callable[[Expr], Callable[[dict], Any]],
    steps: list[str],
) -> RDD:
    """Fold generators into one RDD of record dicts, joining when possible."""
    patterns = [
        _record_binder(gen) for gen in info.generators
    ]
    joined_rdd = sources[0].map(patterns[0])
    joined_set = {0}
    steps.append(f"{_gen_name(info, 0)}.map(bind)")
    remaining = list(range(1, len(info.generators)))
    pending_joins = list(info.joins)

    while remaining:
        progress = False
        for gen_idx in list(remaining):
            conds = [
                j
                for j in pending_joins
                if {j.left_gen, j.right_gen} <= joined_set | {gen_idx}
                and gen_idx in (j.left_gen, j.right_gen)
            ]
            if not conds:
                continue
            left_keys = []
            right_keys = []
            for cond in conds:
                if cond.left_gen == gen_idx:
                    right_keys.append(cond.left)
                    left_keys.append(cond.right)
                else:
                    right_keys.append(cond.right)
                    left_keys.append(cond.left)
            left_fns = [expr_fn(e) for e in left_keys]
            right_fns = [expr_fn(e) for e in right_keys]
            bind = patterns[gen_idx]
            left = joined_rdd.map(
                lambda rec, fns=tuple(left_fns): (tuple(f(rec) for f in fns), rec)
            )
            right = sources[gen_idx].map(bind).map(
                lambda rec, fns=tuple(right_fns): (tuple(f(rec) for f in fns), rec)
            )
            joined_rdd = left.join(right).map(
                lambda kv: {**kv[1][0], **kv[1][1]}
            )
            steps.append(
                f".join({_gen_name(info, gen_idx)} on "
                f"{[to_source(e) for e in left_keys]})"
            )
            joined_set.add(gen_idx)
            remaining.remove(gen_idx)
            for cond in conds:
                pending_joins.remove(cond)
            progress = True
        if not progress:
            # No join condition available: cartesian product.
            gen_idx = remaining.pop(0)
            bind = patterns[gen_idx]
            joined_rdd = joined_rdd.cartesian(sources[gen_idx].map(bind)).map(
                lambda pair: {**pair[0], **pair[1]}
            )
            steps.append(f".cartesian({_gen_name(info, gen_idx)})")
            joined_set.add(gen_idx)
    return joined_rdd


def _record_binder(gen: GenInfo) -> Callable[[tuple], dict]:
    index_vars = list(gen.index_vars)
    value_var = gen.value_var

    def bind(pair: tuple) -> dict:
        key, value = pair
        record: dict[str, Any] = {}
        if len(index_vars) == 1:
            record[index_vars[0]] = key
        else:
            flat = _flatten_key(key)
            for name, part in zip(index_vars, flat):
                record[name] = part
        if value_var is not None:
            record[value_var] = value
        return record

    return bind


def _flatten_key(key: Any) -> list:
    if isinstance(key, tuple):
        out: list = []
        for part in key:
            out.extend(_flatten_key(part))
        return out
    return [key]


def _gen_name(info: CompInfo, index: int) -> str:
    source = info.generators[index].source
    return source.name if isinstance(source, Var) else f"gen{index}"


# ----------------------------------------------------------------------
# Group-by (Rule 13)
# ----------------------------------------------------------------------


def _apply_group_by(
    info: CompInfo,
    rdd: RDD,
    expr_fn: Callable[[Expr], Callable[[dict], Any]],
    steps: list[str],
) -> RDD:
    if not info.slots:
        raise SacPlanError(
            "a distributed group-by needs aggregations over the lifted "
            "variables; collect-the-group queries run on the interpreter"
        )
    key_fns = [expr_fn(e) for e in (info.group_key_exprs or [])]
    slot_fns = [expr_fn(slot.expr) for slot in info.slots]
    monoids = [monoid(slot.monoid) for slot in info.slots]
    single_key = len(key_fns) == 1

    def to_pair(record: dict) -> tuple:
        key = key_fns[0](record) if single_key else tuple(f(record) for f in key_fns)
        return key, tuple(f(record) for f in slot_fns)

    def combine(left: tuple, right: tuple) -> tuple:
        return tuple(m.combine(a, b) for m, a, b in zip(monoids, left, right))

    reduced = rdd.map(to_pair).reduce_by_key(combine)
    steps.append(
        ".map(record => (key, (g1..gm))).reduceByKey(⊗)"
    )

    residual = info.residual_value
    slot_vars = [slot.slot_var for slot in info.slots]
    if len(slot_vars) == 1 and residual == Var(slot_vars[0]):
        result = reduced.map_values(lambda aggs: aggs[0])
    else:
        finish = expr_fn(residual)
        key_vars = info.group_key_vars or []

        def apply_residual(kv):
            key, aggs = kv
            record = dict(zip(slot_vars, aggs))
            parts = key if isinstance(key, tuple) else (key,)
            record.update(zip(key_vars, parts))
            return key, finish(record)

        result = reduced.map(apply_residual)
        steps.append(".mapValues(f)")
    return result


# ----------------------------------------------------------------------
# Result assembly
# ----------------------------------------------------------------------


def _finish(
    rdd: RDD,
    engine: EngineContext,
    builder: Optional[str],
    args: tuple,
    build_context: BuildContext,
) -> Any:
    """Down-coerce the element RDD through the requested builder."""
    if builder is None or builder == "rdd":
        return rdd
    if builder == "tiled":
        return _assemble_tiled_matrix(rdd, engine, int(args[0]), int(args[1]), build_context)
    if builder == "tiled_vector":
        return _assemble_tiled_vector(rdd, engine, int(args[0]), build_context)
    # Local builders: collect the elements to the driver and build there.
    return REGISTRY.build(builder, args, rdd.collect(), build_context)


def _assemble_tiled_matrix(
    rdd: RDD, engine: EngineContext, rows: int, cols: int, ctx: BuildContext
) -> TiledMatrix:
    """The paper's distributed ``tiled`` builder: group elements by tile.

    Uses ``combineByKey`` so elements accumulate into dense tile buffers
    map-side instead of shuffling a list per tile (groupByKey).
    """
    n = ctx.tile_size
    helper = TiledMatrix(rows, cols, n, engine.empty_rdd())

    def create(entry):
        coord, offset_value = entry
        tile = np.zeros(helper.tile_shape(*coord))
        tile[offset_value[0]] = offset_value[1]
        return tile

    def merge_value(tile, entry):
        _coord, offset_value = entry
        tile[offset_value[0]] = offset_value[1]
        return tile

    def merge_tiles(a, b):
        return np.where(b != 0, b, a)

    keyed = rdd.filter(
        lambda kv: 0 <= kv[0][0] < rows and 0 <= kv[0][1] < cols
    ).map(
        lambda kv: (
            (kv[0][0] // n, kv[0][1] // n),
            ((kv[0][0] // n, kv[0][1] // n), ((kv[0][0] % n, kv[0][1] % n), kv[1])),
        )
    )
    tiles = keyed.combine_by_key(create, merge_value, merge_tiles)
    return TiledMatrix(rows, cols, n, tiles)


def _assemble_tiled_vector(
    rdd: RDD, engine: EngineContext, length: int, ctx: BuildContext
) -> TiledVector:
    n = ctx.tile_size
    helper = TiledVector(length, n, engine.empty_rdd())

    def create(entry):
        block_index, offset_value = entry
        block = np.zeros(helper.block_length(block_index))
        block[offset_value[0]] = offset_value[1]
        return block

    def merge_value(block, entry):
        _index, offset_value = entry
        block[offset_value[0]] = offset_value[1]
        return block

    def merge_blocks(a, b):
        return np.where(b != 0, b, a)

    keyed = rdd.filter(lambda kv: 0 <= kv[0] < length).map(
        lambda kv: (kv[0] // n, (kv[0] // n, (kv[0] % n, kv[1])))
    )
    blocks = keyed.combine_by_key(create, merge_value, merge_blocks)
    return TiledVector(length, n, blocks)
