"""Generic RDD translation — paper Section 4, Rules (13) and (14).

This path evaluates a comprehension over *element-level* records:
every generator becomes an RDD of ``(key, value)`` coordinate pairs
(tiled inputs are sparsified distributedly, tile by tile), equality
guards between generators become RDD joins (Rule 14), and a group-by
with aggregations becomes ``map`` + ``reduceByKey(⊗)`` + ``mapValues(f)``
(Rule 13).

It is the reproduction of the paper's coordinate-format execution — the
thing Section 5 improves on — and doubles as the planner's safety net:
any comprehension too irregular for the tiled rules (e.g. the smoothing
stencil, whose group key is range-generated) still runs distributed
through here.

Records flow through the engine as plain ``dict`` environments; all
expression evaluation reuses the reference interpreter's semantics, so
this path is correct by construction for anything the interpreter
accepts.

The rule here only *recognizes* and emits a ``Coordinate`` IR node; the
element-level runtime (joins, group-by, assembly) lives in
:mod:`repro.planner.lower`.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from ..comprehension.ast import Var, to_source
from ..engine import EngineContext, RDD
from ..storage import CooMatrix, CooVector, CsrMatrix, DenseMatrix, DenseVector
from ..storage.registry import REGISTRY, BuildContext
from ..storage.tiled import TiledMatrix, TiledVector
from .analysis import CompInfo, GenInfo
from .ir import IRNode, OP_COORDINATE, scan_storage_node
from .plan import RULE_COORDINATE

#: Environment values whose repr is cheap and semantically meaningful;
#: everything else is tracked by object identity only.
_SCALAR_TYPES = (bool, int, float, str)


def emit_coordinate(
    info: CompInfo,
    env: dict[str, Any],
    engine: EngineContext,
    builder: Optional[str],
    args: tuple,
    build_context: BuildContext,
) -> Optional[IRNode]:
    """Recognize element-level RDD translation (Rules 13/14); emit IR."""
    if info.post_group_quals:
        return None
    if info.ranges:
        return None  # data-dependent ranges need the interpreter
    sources = []
    for gen in info.generators:
        rdd = _element_rdd(gen, env, engine)
        if rdd is None:
            return None
        sources.append(rdd)

    scans = tuple(
        scan_storage_node(
            gen.source.name if isinstance(gen.source, Var) else f"gen{idx}",
            env.get(gen.source.name) if isinstance(gen.source, Var) else None,
        )
        for idx, gen in enumerate(info.generators)
    )
    # The interpreter evaluates guard/head expressions against the whole
    # environment, not just the generators — e.g. ``N2[i, j]`` indexes a
    # bystander binding.  Scalars go into the signature; every other
    # binding's identity gates fingerprint equality (and hence reuse).
    scalars = tuple(
        sorted(
            (name, repr(value))
            for name, value in env.items()
            if isinstance(value, _SCALAR_TYPES)
        )
    )
    identity = tuple(
        (name, id(value))
        for name, value in sorted(env.items())
        if not isinstance(value, _SCALAR_TYPES)
    )
    root = IRNode(
        op=OP_COORDINATE,
        children=scans,
        sig=(
            ("comp", to_source(info.comp)),
            ("builder", builder, tuple(repr(a) for a in args)),
            ("tile_size", build_context.tile_size),
            ("scalars", scalars),
        ),
        identity=identity,
    )
    root.attrs.update(
        rule=RULE_COORDINATE,
        builder=builder,
        reusable=True,
        description=(
            "element-level translation: coordinate pairs joined with RDD "
            "joins (Rule 14), aggregated with reduceByKey (Rule 13)"
        ),
        pseudocode="",
        details={"generators": len(info.generators)},
        payload=dict(
            info=info, env=env, engine=engine, builder=builder, args=args,
            build_context=build_context, sources=sources,
        ),
    )
    return root


# ----------------------------------------------------------------------
# Sources
# ----------------------------------------------------------------------


def _element_rdd(
    gen: GenInfo, env: dict[str, Any], engine: EngineContext
) -> Optional[RDD]:
    """An RDD of ``(key, value)`` coordinate pairs for one generator."""
    if not isinstance(gen.source, Var):
        return None
    value = env.get(gen.source.name)
    if isinstance(value, RDD):
        return value
    if isinstance(value, TiledMatrix):
        n = value.tile_size

        def explode_matrix(record):
            (bi, bj), tile = record
            for i in range(tile.shape[0]):
                for j in range(tile.shape[1]):
                    yield (bi * n + i, bj * n + j), tile[i, j].item()

        return value.tiles.flat_map(explode_matrix)
    if isinstance(value, TiledVector):
        n = value.tile_size

        def explode_vector(record):
            bi, block = record
            for i in range(block.shape[0]):
                yield bi * n + i, block[i].item()

        return value.blocks.flat_map(explode_vector)
    from ..storage.sparse_tiled import SparseTiledMatrix

    if isinstance(value, SparseTiledMatrix):
        n = value.tile_size

        def explode_sparse(record):
            (bi, bj), tile = record
            for (i, j), element in tile.sparsify():
                yield (bi * n + i, bj * n + j), element

        return value.tiles.flat_map(explode_sparse)
    if isinstance(value, (CooMatrix, CooVector, CsrMatrix, DenseMatrix, DenseVector)):
        return engine.parallelize(list(value.sparsify()))
    if isinstance(value, np.ndarray):
        return engine.parallelize(list(REGISTRY.sparsify(value)))
    if isinstance(value, list):
        return engine.parallelize(value)
    return None
