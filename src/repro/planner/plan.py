"""Executable plans: what the translation rules produce.

A :class:`Plan` packages the chosen rule, a human-readable explanation,
Spark-like pseudocode of the generated program (the analogue of the
paper's emitted Scala), and a thunk that runs it on the engine.  Tests
assert on ``rule`` to pin down *which* translation fired for each paper
example, independent of the numeric result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - types only
    from .cost import CostEstimate

#: Rule identifiers, named after the paper's sections.
RULE_LOCAL = "local"                       # Sections 2-3, interpreter
RULE_LOCAL_CODEGEN = "local-codegen"       # Sections 2-3, generated loops
RULE_PRESERVE_TILING = "preserve-tiling"   # Section 5.1, Eq. (17)
RULE_TILED_SHUFFLE = "tiled-shuffle"       # Section 5.2, Eq. (19)
RULE_TILED_REDUCE = "tiled-reduce"         # Section 5.3 (join + reduceByKey)
RULE_GROUP_BY_JOIN = "group-by-join"       # Section 5.4 (SUMMA)
RULE_COORDINATE = "coordinate"             # Section 4, Rules (13)/(14)


@dataclass
class Plan:
    """An executable translation of one comprehension."""

    rule: str
    description: str
    thunk: Callable[[], Any]
    pseudocode: str = ""
    details: dict[str, Any] = field(default_factory=dict)
    #: Cost-model prediction for the chosen strategy, when the planner
    #: ran candidate selection (group-by-join-shaped queries).
    estimate: Optional["CostEstimate"] = None
    #: Every candidate's estimate, keyed by strategy name.
    candidates: dict[str, "CostEstimate"] = field(default_factory=dict)
    #: Adaptive-execution decisions (strategy downgrades, partition
    #: coalescing, skew splits) that fired while this plan ran; populated
    #: at execute time when the engine's adaptive layer is enabled.
    adaptive_decisions: list = field(default_factory=list)

    def execute(self) -> Any:
        """Run the plan and return the built storage/value."""
        return self.thunk()

    def explain(self) -> str:
        """Multi-line explanation: rule, description, generated program."""
        lines = [f"rule: {self.rule}", f"description: {self.description}"]
        if self.details:
            for key, value in sorted(self.details.items()):
                lines.append(f"{key}: {value}")
        if self.adaptive_decisions:
            lines.append("adaptive decisions:")
            for decision in self.adaptive_decisions:
                lines.append(f"  - {decision.summary()}")
        if self.candidates:
            lines.append("cost estimates (chosen first):")
            chosen = self.estimate.strategy if self.estimate else None
            ordered = sorted(
                self.candidates.values(),
                key=lambda est: (est.strategy != chosen, est.total_seconds),
            )
            for est in ordered:
                marker = "*" if est.strategy == chosen else " "
                lines.append(f"  {marker} {est.summary()}")
        if self.pseudocode:
            lines.append("generated program:")
            lines.extend("  " + line for line in self.pseudocode.splitlines())
        return "\n".join(lines)
