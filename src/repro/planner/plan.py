"""Executable plans: what the translation rules produce.

A :class:`Plan` packages the chosen rule, a human-readable explanation,
Spark-like pseudocode of the generated program (the analogue of the
paper's emitted Scala), and a thunk that runs it on the engine.  Tests
assert on ``rule`` to pin down *which* translation fired for each paper
example, independent of the numeric result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - types only
    from .cost import CostEstimate
    from .ir import IRNode, PassTraceEntry

#: Rule identifiers, named after the paper's sections.
RULE_LOCAL = "local"                       # Sections 2-3, interpreter
RULE_LOCAL_CODEGEN = "local-codegen"       # Sections 2-3, generated loops
RULE_PRESERVE_TILING = "preserve-tiling"   # Section 5.1, Eq. (17)
RULE_TILED_SHUFFLE = "tiled-shuffle"       # Section 5.2, Eq. (19)
RULE_TILED_REDUCE = "tiled-reduce"         # Section 5.3 (join + reduceByKey)
RULE_GROUP_BY_JOIN = "group-by-join"       # Section 5.4 (SUMMA)
RULE_COORDINATE = "coordinate"             # Section 4, Rules (13)/(14)


@dataclass
class Plan:
    """An executable translation of one comprehension."""

    rule: str
    description: str
    thunk: Callable[[], Any]
    pseudocode: str = ""
    details: dict[str, Any] = field(default_factory=dict)
    #: Cost-model prediction for the chosen strategy, when the planner
    #: ran candidate selection (group-by-join-shaped queries).
    estimate: Optional["CostEstimate"] = None
    #: Every candidate's estimate, keyed by strategy name.
    candidates: dict[str, "CostEstimate"] = field(default_factory=dict)
    #: Adaptive-execution decisions (strategy downgrades, partition
    #: coalescing, skew splits) that fired while this plan ran; populated
    #: at execute time when the engine's adaptive layer is enabled.
    adaptive_decisions: list = field(default_factory=list)
    #: Pass-pipeline trace: one before/after entry per named pass.
    trace: list["PassTraceEntry"] = field(default_factory=list)
    #: The logical operator DAG the normalize bridge derived.
    logical: Optional["IRNode"] = None
    #: The physical operator DAG this plan was lowered from.
    physical: Optional["IRNode"] = None
    #: Identity fingerprint of the physical DAG + planner options, set
    #: only for plans eligible for common-subplan reuse; ``None`` keeps
    #: the plan out of any fingerprint-keyed cache.
    fingerprint: Optional[str] = None

    def execute(self) -> Any:
        """Run the plan and return the built storage/value."""
        return self.thunk()

    def fused_kernels(self) -> list[dict[str, Any]]:
        """Fused-chain records off the physical DAG (possibly empty).

        Each entry carries the collapsed chain's node ids, the source
        fingerprint, the record ``mode``, and the generated kernel text
        exactly as the ``fusion`` pass stashed them.
        """
        if self.physical is None:
            return []
        return [
            node.attrs["fused_kernel"]
            for node in self.physical.walk()
            if "fused_kernel" in node.attrs
        ]

    def explain(self) -> str:
        """Multi-line explanation: rule, description, generated program."""
        lines = [f"rule: {self.rule}", f"description: {self.description}"]
        if self.details:
            for key, value in sorted(self.details.items()):
                lines.append(f"{key}: {value}")
        if self.adaptive_decisions:
            lines.append("adaptive decisions:")
            for decision in self.adaptive_decisions:
                lines.append(f"  - {decision.summary()}")
        if self.candidates:
            lines.append("cost estimates (chosen first):")
            chosen = self.estimate.strategy if self.estimate else None
            ordered = sorted(
                self.candidates.values(),
                key=lambda est: (est.strategy != chosen, est.total_seconds),
            )
            for est in ordered:
                marker = "*" if est.strategy == chosen else " "
                lines.append(f"  {marker} {est.summary()}")
        if self.trace:
            lines.append("passes:")
            for entry in self.trace:
                lines.append(f"  - {entry.summary()}")
        for fused in self.fused_kernels():
            lines.append(
                f"fused kernel {fused['fingerprint']} "
                f"(mode {fused['mode']}; {' + '.join(fused['nodes'])}):"
            )
            lines.extend("  " + line for line in fused["source"].splitlines())
        if self.pseudocode:
            lines.append("generated program:")
            lines.extend("  " + line for line in self.pseudocode.splitlines())
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe export: operators, strategy, costs, pass trace."""
        from .ir import _json_safe

        out: dict[str, Any] = {
            "rule": self.rule,
            "description": self.description,
            "details": {k: _json_safe(v) for k, v in sorted(self.details.items())},
        }
        chosen = self.estimate.strategy if self.estimate else None
        if chosen is None:
            chosen = self.details.get("strategy")
        if chosen is not None:
            out["strategy"] = chosen
        if self.candidates:
            ordered = sorted(
                self.candidates.values(),
                key=lambda est: (est.strategy != chosen, est.total_seconds),
            )
            out["candidates"] = [
                {
                    "strategy": est.strategy,
                    "chosen": est.strategy == chosen,
                    "shuffle_bytes": est.shuffle_bytes,
                    "broadcast_bytes": est.broadcast_bytes,
                    "tasks": est.tasks,
                    "total_seconds": est.total_seconds,
                }
                for est in ordered
            ]
        if self.trace:
            out["passes"] = [entry.to_dict() for entry in self.trace]
        fused = self.fused_kernels()
        if fused:
            out["fused_kernels"] = [
                {
                    "nodes": list(entry["nodes"]),
                    "fingerprint": entry["fingerprint"],
                    "mode": entry["mode"],
                    "source": entry["source"],
                }
                for entry in fused
            ]
        if self.logical is not None:
            out["logical"] = self.logical.to_dict()
        if self.physical is not None:
            out["physical"] = self.physical.to_dict()
        if self.fingerprint is not None:
            out["fingerprint"] = self.fingerprint
        if self.pseudocode:
            out["pseudocode"] = self.pseudocode
        if self.adaptive_decisions:
            out["adaptive_decisions"] = [
                decision.summary() for decision in self.adaptive_decisions
            ]
        return out
