"""Cost model for physical plan selection (the planner's optimizer).

The paper's Figure 4 hinges on *which* physical plan runs: the
group-by-join (SUMMA) multiply beats MLlib while the naive 5.3
join+group-by loses to it, and the broadcast map-side join beats both
when one side is small (the factorization's rank-k factors).  Instead of
static knobs, :class:`CostModel` estimates — per candidate strategy —
how many bytes cross the network, how many tasks launch, and how well
the contraction parallelizes, all from the tile grids, the storages'
partition counts, and the :class:`~repro.engine.cluster.ClusterSpec`.
``_plan_comp`` picks the cheapest candidate; ``explain()`` reports every
candidate so a choice can be audited.

The shuffle-byte formulas mirror the engine's measured accounting
(``engine.serialization``): dense payload bytes plus a per-record
envelope.  With N×N tiles over an n×l × l×m product (grids gr, gk, gc):

* **replicate** (5.4): every A-tile is sent to gc result columns and
  every B-tile to gr result rows — ``|A|·gc + |B|·gr`` bytes, one
  cogroup shuffle, reduce side on ``min(parallelism, gr·gc)`` grid
  partitions.
* **tiled-reduce** (5.3, "naive"): the tile join shuffles ``|A| + |B|``
  bytes, then one partial product per (i,k,j) triple is merged with
  reduceByKey; map-side combining collapses the gk copies of each
  result tile down to one per *join partition holding a distinct k*, so
  ``|C|·min(gk, join partitions)`` bytes shuffle.  The join key is the
  shared dimension — only gk distinct values — so the contraction runs
  on at most gk cores: the skew the paper blames for 5.3's slowness.
* **broadcast** (map-side join): the small side is collected and copied
  to every executor (driver→executor traffic, not shuffle), the large
  side contracts in place, and partial result tiles merge with
  reduceByKey — ``|C|·min(gk, large partitions)`` shuffle bytes.

Compute is charged as ``2·n·l·m`` flops at a fixed local-GEMM rate plus
a per-contraction call overhead, scaled by the cluster's
``compute_scale`` and divided by the strategy's *effective* parallelism
(the skew term).

**Density-aware costing.**  Every tiled storage carries
:class:`~repro.storage.stats.DensityStats` (recorded at construction by
sparse builders, propagated by the translation rules); the model scales
each candidate by them.  The engine densifies CSC tiles *before* any
shuffle (``ResolvedGen.tile_records``), so the tiled strategies' bytes
and records scale with **block density** — the fraction of grid tiles
stored: a block-sparse side with block density ``b`` contributes
``b·|A|`` payload, a tile pair contracts only when both blocks are
present (``b_l·b_r`` of the dense pairs), and tiled-reduce/broadcast
ship ``min(gk·b_l·b_r, parts)`` surviving partial copies per result
tile.  The **element** density matters only on the coordinate path,
which ships one record per stored non-zero.  All scalings are
multiplicative, so dense inputs (density 1.0) reproduce the previous
estimates byte-for-byte — fig4a/fig4b plan choices are unaffected.
Estimates remain upper bounds in expectation, not guarantees: block
densities are recorded facts for source storages but propagated
estimates for derived ones (see :mod:`repro.storage.stats`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..engine.cluster import ClusterSpec
from ..storage.stats import DENSE, DensityStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .groupby_join import GbjMatch
    from .tiling import TiledSetup

#: Bytes per float64 element inside a tile.
ELEMENT_BYTES = 8
#: Per-record envelope: key tuples, the join-coordinate int, container
#: headers and the shuffle's record overhead (see engine.serialization;
#: a tile record measures ~50-60 bytes beyond its payload).
TILE_RECORD_OVERHEAD = 64
#: Bytes per shuffled element-level record on the coordinate path
#: (an ((i, j), v) pair of smallints and a float).
COORD_RECORD_BYTES = 48
#: Throughput the model assumes for the measured (local NumPy) tile
#: contraction, in flops per second of *measured* compute.  The engine's
#: einsum-based ``contract`` runs below raw BLAS gemm speed; the exact
#: value matters little for plan choice because every dense candidate
#: does the same flops — only the parallelism divisor differs.
LOCAL_CONTRACT_FLOPS = 2.0e10
#: Python-level overhead per tile-pair contraction call.
CONTRACT_CALL_SECONDS = 5e-5
#: Interpreter cost per element record on the coordinate path.
COORD_ELEMENT_SECONDS = 2e-6

#: Candidate strategy names (details["strategy"] / explain keys).
STRATEGY_REPLICATE = "gbj-replicate"
STRATEGY_BROADCAST_LEFT = "gbj-broadcast-left"
STRATEGY_BROADCAST_RIGHT = "gbj-broadcast-right"
STRATEGY_TILED_REDUCE = "tiled-reduce"
STRATEGY_COORDINATE = "coordinate"


@dataclass(frozen=True)
class CostEstimate:
    """Predicted cost of one candidate physical strategy."""

    strategy: str
    #: Bytes the engine's shuffle accountant should measure.
    shuffle_bytes: int
    shuffle_records: int
    #: Driver→executor traffic (collect + broadcast); charged to network
    #: time but *not* to shuffle_bytes, matching the engine's counters.
    broadcast_bytes: int
    tasks: int
    #: Cores the dominant stage can actually keep busy (the skew term).
    effective_parallelism: int
    #: Recommended reduce-side partition count for the strategy.
    reduce_partitions: int
    compute_seconds: float
    network_seconds: float
    launch_seconds: float
    #: Input densities this candidate was priced with (``"dense"`` when
    #: both sides carried no sparsity information); surfaced by explain().
    densities: str = "dense"
    #: Bytes the out-of-core tier would write+read back because the
    #: candidate's working set overflows the configured memory limit
    #: (0 when no limit is set, keeping every estimate identical to the
    #: limit-free model).
    spill_bytes: int = 0
    spill_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return (
            self.compute_seconds + self.network_seconds
            + self.launch_seconds + self.spill_seconds
        )

    def summary(self) -> str:
        spill = (
            f", {self.spill_bytes / 1e6:.2f}MB spill"
            if self.spill_bytes else ""
        )
        return (
            f"{self.strategy}: {self.shuffle_bytes / 1e6:.2f}MB shuffle "
            f"({self.shuffle_records} records), "
            f"{self.broadcast_bytes / 1e6:.2f}MB broadcast{spill}, "
            f"{self.tasks} tasks on {self.effective_parallelism} cores "
            f"-> {self.total_seconds * 1e3:.2f}ms est "
            f"[priced at {self.densities}]"
        )


def _density_note(left: DensityStats, right: DensityStats) -> str:
    """Human-readable record of the densities a candidate was priced with."""

    def one(stats: DensityStats) -> str:
        if stats.is_dense:
            return "dense"
        return f"d={stats.density:.3g} bd={stats.block_density:.3g}"

    if left.is_dense and right.is_dense:
        return "dense"
    return f"left {one(left)}, right {one(right)}"


class CostModel:
    """Estimates candidate costs for one group-by-join-shaped query.

    ``measured`` — optional runtime feedback from the adaptive layer:
    ``id(storage) → (measured bytes, measured stored records)``.  When a
    generator's storage has an entry, the measured stored-tile count
    replaces the recorded density statistic (block density =
    stored / dense tiles), so a model refreshed mid-job or on a later
    compile prices with facts instead of estimates.  For a storage whose
    recorded statistic was already exact, the override is the identical
    number and every estimate is unchanged.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        default_parallelism: int,
        measured: Optional[dict[int, tuple[int, int]]] = None,
        memory_limit: Optional[int] = None,
    ):
        self.cluster = cluster
        self.parallelism = default_parallelism
        self.measured = measured or {}
        #: Engine memory cap (bytes); when set, candidates whose working
        #: set overflows it are charged spill I/O, so plan choice reacts
        #: to memory pressure (a strategy that replicates bands may lose
        #: to a leaner one once the replicas no longer fit in memory).
        self.memory_limit = memory_limit

    # -- shared quantities ------------------------------------------------

    def _spill_term(self, working_set_bytes: float) -> tuple[int, float]:
        """(spill bytes, spill seconds) for a candidate working set.

        Working set beyond the memory limit is written to the spill
        store and read back once — 2x the overflow — at the cluster's
        spill bandwidth.  With no limit configured the term is zero and
        every estimate matches the limit-free model exactly.
        """
        if self.memory_limit is None:
            return 0, 0.0
        overflow = max(0.0, working_set_bytes - self.memory_limit)
        spill_bytes = int(round(2 * overflow))
        return spill_bytes, spill_bytes / self.cluster.spill_bandwidth

    def _gen_stats(self, gen) -> tuple[int, int, int, DensityStats]:
        """(dense payload bytes, dense tile count, RDD partitions,
        density stats) of a generator.

        Bytes and tiles are the *dense* quantities; callers scale them
        by the returned :class:`DensityStats` (block density for tiled
        strategies, element density on the coordinate path) so that
        dense inputs reproduce the unscaled estimates exactly.
        """
        elements = 1
        tiles = 1
        for dim in gen.axis_dims:
            elements *= dim
            tiles *= math.ceil(dim / gen.storage.tile_size)
        partitions = max(1, gen.tiles.num_partitions)
        stats = gen.stats if isinstance(
            getattr(gen, "stats", None), DensityStats
        ) else DENSE
        if self.measured:
            entry = self.measured.get(id(getattr(gen, "storage", None)))
            if entry is not None:
                _nbytes, records = entry
                block_density = min(1.0, records / tiles) if tiles else 1.0
                stats = DensityStats(block_density, block_density)
        return elements * ELEMENT_BYTES, tiles, partitions, stats

    def _compute(self, flops: float, calls: float, parallelism: int) -> float:
        parallelism = max(1, parallelism)
        seconds = flops / LOCAL_CONTRACT_FLOPS + calls * CONTRACT_CALL_SECONDS
        return seconds * self.cluster.compute_scale / parallelism

    def _launch(self, *stage_tasks: int) -> float:
        cores = max(1, self.cluster.total_cores)
        return self.cluster.task_launch_overhead * sum(
            math.ceil(tasks / cores) for tasks in stage_tasks if tasks
        )

    # -- candidates -------------------------------------------------------

    def candidates(
        self, setup: "TiledSetup", match: "GbjMatch"
    ) -> dict[str, CostEstimate]:
        """Every strategy's estimate for a matched group-by-join."""
        out = {
            STRATEGY_REPLICATE: self.replicate(setup, match),
            STRATEGY_BROADCAST_LEFT: self.broadcast(setup, match, "left"),
            STRATEGY_BROADCAST_RIGHT: self.broadcast(setup, match, "right"),
            STRATEGY_TILED_REDUCE: self.tiled_reduce(setup, match),
            STRATEGY_COORDINATE: self.coordinate(setup, match),
        }
        return out

    def replicate(self, setup: "TiledSetup", match: "GbjMatch") -> CostEstimate:
        """Section 5.4: SUMMA-style row/column band replication.

        Only *stored* tiles replicate — a block-sparse side with block
        density ``b`` ships ``b`` of the dense band volume — but each
        stored tile is still copied across a full result band, which is
        why block sparsity hurts replicate more than the join-once
        strategies.
        """
        left_bytes, left_tiles, left_parts, ls = self._gen_stats(match.left_gen)
        right_bytes, right_tiles, right_parts, rs = self._gen_stats(match.right_gen)
        bl, br = ls.block_density, rs.block_density
        gr, gc = match.grid_rows, match.grid_cols
        records_f = left_tiles * bl * gc + right_tiles * br * gr
        shuffle_bytes = int(round(
            left_bytes * bl * gc
            + right_bytes * br * gr
            + records_f * TILE_RECORD_OVERHEAD
        ))
        reduce_partitions = min(self.parallelism, gr * gc)
        parallel = min(self.cluster.total_cores, reduce_partitions)
        tasks = left_parts + right_parts + reduce_partitions
        spill_bytes, spill_seconds = self._spill_term(shuffle_bytes)
        return CostEstimate(
            strategy=STRATEGY_REPLICATE,
            shuffle_bytes=shuffle_bytes,
            shuffle_records=int(round(records_f)),
            broadcast_bytes=0,
            tasks=tasks,
            effective_parallelism=parallel,
            reduce_partitions=reduce_partitions,
            compute_seconds=self._compute(
                match.flops * bl * br,
                gr * gc * match.grid_join * bl * br,
                parallel,
            ),
            network_seconds=shuffle_bytes / self.cluster.network_bandwidth,
            launch_seconds=self._launch(
                left_parts + right_parts, reduce_partitions
            ),
            densities=_density_note(ls, rs),
            spill_bytes=spill_bytes,
            spill_seconds=spill_seconds,
        )

    def tiled_reduce(self, setup: "TiledSetup", match: "GbjMatch") -> CostEstimate:
        """Section 5.3: tile join + one partial product per (i,k,j).

        The join ships each stored tile once (``b·|A| + b·|B|``), and a
        tile pair only produces a partial when *both* blocks are present
        — ``b_l·b_r`` of the dense (i,k,j) triples — so at most
        ``min(gk·b_l·b_r, join partitions)`` partial copies of each
        result tile survive map-side combining.
        """
        left_bytes, left_tiles, left_parts, ls = self._gen_stats(match.left_gen)
        right_bytes, right_tiles, right_parts, rs = self._gen_stats(match.right_gen)
        bl, br = ls.block_density, rs.block_density
        gr, gc, gk = match.grid_rows, match.grid_cols, match.grid_join
        join_parts = max(left_parts, right_parts)
        join_records = left_tiles * bl + right_tiles * br
        join_bytes = (
            left_bytes * bl + right_bytes * br
            + join_records * TILE_RECORD_OVERHEAD
        )
        # Map-side combine merges the gk partials of a result tile only
        # within one join partition; distinct join keys land in distinct
        # partitions (gk ≤ partitions in practice), so one copy of the
        # result survives per partition holding a distinct k — of which
        # only the ~gk·b_l·b_r block-present pairs produce partials.
        copies = min(gk * bl * br, join_parts)
        partial_records = gr * gc * copies
        partial_bytes = (
            match.result_bytes * copies + partial_records * TILE_RECORD_OVERHEAD
        )
        shuffle_bytes = int(round(join_bytes + partial_bytes))
        # The join key is the shared dimension: gk distinct values, so
        # the whole contraction runs on at most gk cores (key skew).
        parallel = min(self.cluster.total_cores, min(gk, join_parts))
        tasks = left_parts + right_parts + 2 * join_parts
        spill_bytes, spill_seconds = self._spill_term(shuffle_bytes)
        return CostEstimate(
            strategy=STRATEGY_TILED_REDUCE,
            shuffle_bytes=shuffle_bytes,
            shuffle_records=int(round(join_records + partial_records)),
            broadcast_bytes=0,
            tasks=tasks,
            effective_parallelism=parallel,
            reduce_partitions=join_parts,
            compute_seconds=self._compute(
                match.flops * bl * br, gr * gc * gk * bl * br, parallel
            ),
            network_seconds=shuffle_bytes / self.cluster.network_bandwidth,
            launch_seconds=self._launch(
                left_parts + right_parts, join_parts, join_parts
            ),
            densities=_density_note(ls, rs),
            spill_bytes=spill_bytes,
            spill_seconds=spill_seconds,
        )

    def broadcast(
        self, setup: "TiledSetup", match: "GbjMatch", side: str
    ) -> CostEstimate:
        """Map-side join: collect+broadcast one side, stream the other."""
        small_gen = match.left_gen if side == "left" else match.right_gen
        large_gen = match.right_gen if side == "left" else match.left_gen
        small_bytes, small_tiles, _small_parts, ss = self._gen_stats(small_gen)
        _large_bytes, _large_tiles, large_parts, lls = self._gen_stats(large_gen)
        bs, bl = ss.block_density, lls.block_density
        gr, gc, gk = match.grid_rows, match.grid_cols, match.grid_join
        # One collect to the driver plus one copy per executor; only
        # stored tiles are collected (tiles densify on collect).
        broadcast_bytes = int(round(
            small_bytes * bs * (1 + self.cluster.num_executors)
        ))
        # The large side's partials rarely share a partition (one result
        # key per (large tile, small tile) pair), so map-side combining
        # collapses at best to one copy per large partition — and only
        # block-present pairs (gk·b_s·b_l of gk) produce partials.
        copies = min(gk * bs * bl, large_parts)
        records_f = gr * gc * copies
        shuffle_bytes = int(round(
            match.result_bytes * copies + records_f * TILE_RECORD_OVERHEAD
        ))
        reduce_partitions = min(self.parallelism, gr * gc)
        parallel = min(self.cluster.total_cores, large_parts)
        strategy = (
            STRATEGY_BROADCAST_LEFT if side == "left" else STRATEGY_BROADCAST_RIGHT
        )
        left_stats = ss if side == "left" else lls
        right_stats = lls if side == "left" else ss
        # The broadcast copy is resident on every executor for the whole
        # job, so it counts toward the working set alongside the shuffle.
        spill_bytes, spill_seconds = self._spill_term(
            shuffle_bytes + broadcast_bytes
        )
        return CostEstimate(
            strategy=strategy,
            shuffle_bytes=shuffle_bytes,
            shuffle_records=int(round(records_f)),
            broadcast_bytes=broadcast_bytes,
            tasks=large_parts + reduce_partitions + int(round(small_tiles * bs)),
            effective_parallelism=parallel,
            reduce_partitions=reduce_partitions,
            compute_seconds=self._compute(
                match.flops * bs * bl, gr * gc * gk * bs * bl, parallel
            ),
            network_seconds=(
                (shuffle_bytes + broadcast_bytes) / self.cluster.network_bandwidth
            ),
            launch_seconds=self._launch(large_parts, reduce_partitions),
            densities=_density_note(left_stats, right_stats),
            spill_bytes=spill_bytes,
            spill_seconds=spill_seconds,
        )

    def coordinate(self, setup: "TiledSetup", match: "GbjMatch") -> CostEstimate:
        """Section 4's element-level fallback, for the explain report.

        Every element becomes one shuffled record in the join and in the
        group-by; the interpreter touches each pair individually.  This
        is orders of magnitude above the tiled plans — it is listed so
        ``explain`` shows what tiling buys, never auto-chosen when a
        tiled plan exists.

        This is the one path where *element* density (not block density)
        governs the bytes: sparsification ships one record per stored
        non-zero, and a joined pair exists only when both elements are
        non-zero.
        """
        _lb, _lt, _lp, ls = self._gen_stats(match.left_gen)
        _rb, _rt, _rp, rs = self._gen_stats(match.right_gen)
        dl, dr = ls.density, rs.density
        left_elems = 1
        for dim in match.left_gen.axis_dims:
            left_elems *= dim
        right_elems = 1
        for dim in match.right_gen.axis_dims:
            right_elems *= dim
        result_elems = match.result_bytes // ELEMENT_BYTES
        # Join output: one record per multiplied pair, grouped afterwards.
        join_dim = setup.class_dim[match.join_class]
        pairs = result_elems * join_dim * dl * dr
        records_f = left_elems * dl + right_elems * dr + pairs
        shuffle_bytes = int(round(records_f * COORD_RECORD_BYTES))
        cores = max(1, self.cluster.total_cores)
        spill_bytes, spill_seconds = self._spill_term(shuffle_bytes)
        return CostEstimate(
            strategy=STRATEGY_COORDINATE,
            shuffle_bytes=shuffle_bytes,
            shuffle_records=int(round(records_f)),
            broadcast_bytes=0,
            tasks=3 * self.parallelism,
            effective_parallelism=cores,
            reduce_partitions=self.parallelism,
            compute_seconds=(
                records_f * COORD_ELEMENT_SECONDS * self.cluster.compute_scale / cores
            ),
            network_seconds=shuffle_bytes / self.cluster.network_bandwidth,
            launch_seconds=self._launch(
                self.parallelism, self.parallelism, self.parallelism
            ),
            densities=_density_note(ls, rs),
            spill_bytes=spill_bytes,
            spill_seconds=spill_seconds,
        )


def choose_strategy(
    candidates: dict[str, CostEstimate],
    allowed: Optional[list[str]] = None,
) -> str:
    """The cheapest allowed strategy; ties break toward the earlier entry
    (replicate — the paper's preferred SUMMA plan — is listed first)."""
    order = allowed or [
        STRATEGY_REPLICATE,
        STRATEGY_BROADCAST_LEFT,
        STRATEGY_BROADCAST_RIGHT,
        STRATEGY_TILED_REDUCE,
    ]
    viable = [name for name in order if name in candidates]
    return min(viable, key=lambda name: candidates[name].total_seconds)
