"""The group-by-join translation (paper Section 5.4).

A *group-by-join* is a join of two arrays followed by a group-by whose
key pairs one dimension from each side, and an aggregation::

    tiled(n,m)[ (k, ⊕/c) | ((i,j),a) <- A, ((ii,jj),b) <- B,
                kx(i,j) == ky(ii,jj), let c = h(a,b),
                group by k: (gx(i,j), gy(ii,jj)) ]

Matrix multiplication is the canonical instance (gx = i, kx = k,
ky = kk, gy = j, h = a*b, ⊕ = +).  Instead of shuffling one partial
product tile per (i, k, j) triple — what the Section 5.3 translation
does — this rule replicates each A-tile across the result's column
blocks and each B-tile across the result's row blocks, cogroups on the
*result* coordinate, and evaluates all contractions reducer-side,
accumulating directly into one output tile.  This generalizes the SUMMA
algorithm; total shuffle volume is ``|A|·m/N + |B|·n/N`` tiles instead
of ``n·l·m/N³`` partial products.

Matching and building are split so the planner can *cost* the
candidates first: :func:`match_group_by_join` recognizes the pattern
and returns a :class:`GbjMatch` carrying the quantities the cost model
needs (grids, dimensions, partition counts via the generators), then
:func:`emit_replicate` / :func:`emit_broadcast` emit the chosen
physical IR node, which :mod:`repro.planner.lower` turns into the RDD
program.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..comprehension.ast import Var, free_vars, to_source
from ..engine import RecordSizeAccountant
from ..engine.adaptive import AdaptiveDecision
from ..comprehension.monoids import Monoid, monoid
from ..storage import stats as density
from .cost import (
    STRATEGY_BROADCAST_LEFT, STRATEGY_BROADCAST_RIGHT, STRATEGY_REPLICATE,
)
from .ir import (
    IRNode, OP_ASSEMBLE, OP_BROADCAST, OP_GROUP_BY_JOIN, OP_REPLICATE,
    scan_gen_node,
)
from .plan import RULE_GROUP_BY_JOIN
from .tiling import (
    ResolvedGen, TiledSetup, _drop_if_dense, _out_classes, assemble_sig,
)

#: Bytes per float64 element (kept in sync with cost.ELEMENT_BYTES).
_ELEMENT_BYTES = 8


@dataclass
class GbjMatch:
    """A recognized group-by-join, plus the shape facts the cost model uses.

    ``left_gen`` owns the result's row dimension and ``right_gen`` the
    column dimension (generators are swapped during matching if the
    group key listed them the other way around).
    """

    left_gen: ResolvedGen
    right_gen: ResolvedGen
    #: Axis positions: result-row axis and join axis of the left
    #: generator; result-column axis and join axis of the right.
    left_row_axis: int
    left_join_axis: int
    right_col_axis: int
    right_join_axis: int
    #: Einsum-style axis names for :func:`~repro.planner.kernels.contract`.
    left_axes: tuple[str, ...]
    right_axes: tuple[str, ...]
    out_axes: tuple[str, str]
    #: Index classes of the result's dimensions and of the join.
    row_class: int
    col_class: int
    join_class: int
    #: Tile grids: result rows/cols and the contracted dimension.
    grid_rows: int
    grid_cols: int
    grid_join: int
    #: The aggregated term h(a, b) and its monoid.
    term: object
    mon: Monoid
    value_vars: tuple[str, str]
    #: Logical dimensions (elements, not tiles).
    row_dim: int = 0
    col_dim: int = 0
    join_dim: int = 0

    @property
    def flops(self) -> float:
        """Dense contraction work: two flops per multiply-add."""
        return 2.0 * self.row_dim * self.join_dim * self.col_dim

    @property
    def result_bytes(self) -> int:
        """Dense payload bytes of the full result."""
        return self.row_dim * self.col_dim * _ELEMENT_BYTES

    def tile_count(self, side: str) -> int:
        """Stored tile count of one side (for broadcast thresholds)."""
        gen = self.left_gen if side == "left" else self.right_gen
        storage = gen.storage
        if hasattr(storage, "grid_rows"):
            return storage.grid_rows * storage.grid_cols
        return storage.grid_size


def match_group_by_join(setup: TiledSetup) -> Optional[GbjMatch]:
    """Recognize the group-by-join pattern; None if it does not apply."""
    info = setup.info
    if info.group_key_vars is None or info.post_group_quals:
        return None
    if len(setup.gens) != 2 or len(info.slots) != 1 or info.residual_guards:
        return None
    if len(info.joins) != 1:
        return None
    key_exprs = info.group_key_exprs or []
    if len(key_exprs) != 2:
        return None
    out_classes = _out_classes(setup, key_exprs)
    if out_classes is None:
        return None

    left_gen, right_gen = setup.gens
    # The group key must take one dimension from each generator.
    gx, gy = key_exprs
    assert isinstance(gx, Var) and isinstance(gy, Var)
    if gx.name in left_gen.index_vars and gy.name in right_gen.index_vars:
        pass
    elif gx.name in right_gen.index_vars and gy.name in left_gen.index_vars:
        left_gen, right_gen = right_gen, left_gen
        out_classes = out_classes  # classes already dimension-ordered by key
    else:
        return None

    # The join condition must link the two generators on single index vars.
    join = info.joins[0]
    sides = {join.left_gen: join.left, join.right_gen: join.right}
    left_pos = setup.gens.index(left_gen)
    right_pos = setup.gens.index(right_gen)
    kx, ky = sides.get(left_pos), sides.get(right_pos)
    if not (isinstance(kx, Var) and isinstance(ky, Var)):
        return None
    if kx.name not in left_gen.index_vars or ky.name not in right_gen.index_vars:
        return None

    slot = info.slots[0]
    mon = monoid(slot.monoid)
    if mon.np_combine is None:
        return None
    value_vars = (left_gen.value_var, right_gen.value_var)
    if None in value_vars or not free_vars(slot.expr) <= set(value_vars):
        return None
    residual = info.residual_value
    if not (isinstance(residual, Var) and residual.name == slot.slot_var):
        return None  # non-identity f is handled by the 5.3 rule

    row_class, col_class = out_classes
    join_class = setup.classes[kx.name]

    left_row_axis = left_gen.index_vars.index(gx.name if gx.name in left_gen.index_vars else gy.name)
    left_join_axis = left_gen.index_vars.index(kx.name)
    right_col_axis = right_gen.index_vars.index(gy.name if gy.name in right_gen.index_vars else gx.name)
    right_join_axis = right_gen.index_vars.index(ky.name)

    class_names = {cls: f"c{cls}" for cls in setup.class_dim}
    left_axes = tuple(class_names[c] for c in left_gen.axis_classes)
    right_axes = tuple(class_names[c] for c in right_gen.axis_classes)
    out_axes = (class_names[row_class], class_names[col_class])

    return GbjMatch(
        left_gen=left_gen,
        right_gen=right_gen,
        left_row_axis=left_row_axis,
        left_join_axis=left_join_axis,
        right_col_axis=right_col_axis,
        right_join_axis=right_join_axis,
        left_axes=left_axes,
        right_axes=right_axes,
        out_axes=out_axes,
        row_class=row_class,
        col_class=col_class,
        join_class=join_class,
        grid_rows=setup.grid_size(row_class),
        grid_cols=setup.grid_size(col_class),
        grid_join=setup.grid_size(join_class),
        term=slot.expr,
        mon=mon,
        value_vars=(value_vars[0], value_vars[1]),
        row_dim=setup.class_dim[row_class],
        col_dim=setup.class_dim[col_class],
        join_dim=setup.class_dim[join_class],
    )


def _match_stats(match: GbjMatch):
    """Result density of the matched contraction (estimate; None = dense)."""
    return _drop_if_dense(
        density.contraction(
            match.left_gen.stats, match.right_gen.stats,
            match.join_dim, match.grid_join,
        )
    )


def _gbj_sig(match: GbjMatch) -> tuple:
    """Semantic signature of the matched contraction."""
    return (
        ("term", to_source(match.term)),
        ("monoid", match.mon.name),
        ("axes", match.left_axes, match.right_axes, match.out_axes),
        ("positions", match.left_row_axis, match.left_join_axis,
         match.right_col_axis, match.right_join_axis),
        ("grid", match.grid_rows, match.grid_cols, match.grid_join),
    )


def emit_replicate(
    setup: TiledSetup, match: GbjMatch, builder: str, args: tuple
) -> IRNode:
    """The SUMMA-style translation: replicate row/column tile bands."""
    left_scan = scan_gen_node(match.left_gen)
    right_scan = scan_gen_node(match.right_gen)
    left_rep = IRNode(
        op=OP_REPLICATE,
        children=(left_scan,),
        sig=(("axis", match.left_row_axis, match.left_join_axis),
             ("copies", match.grid_cols)),
        label="rows",
    )
    right_rep = IRNode(
        op=OP_REPLICATE,
        children=(right_scan,),
        sig=(("axis", match.right_col_axis, match.right_join_axis),
             ("copies", match.grid_rows)),
        label="cols",
    )
    join = IRNode(
        op=OP_GROUP_BY_JOIN,
        children=(left_rep, right_rep),
        sig=_gbj_sig(match) + (("strategy", STRATEGY_REPLICATE),),
        attrs={"strategy": STRATEGY_REPLICATE, "monoid": match.mon.name},
        label="summa",
    )
    root = IRNode(
        op=OP_ASSEMBLE,
        children=(join,),
        sig=assemble_sig(setup, builder, args),
    )
    root.attrs.update(
        rule=RULE_GROUP_BY_JOIN,
        builder=builder,
        strategy=STRATEGY_REPLICATE,
        reusable=True,
        description=(
            "group-by-join (SUMMA): replicate row/column tile bands, "
            "cogroup on result coordinates, contract reducer-side"
        ),
        pseudocode=(
            "Tiled(n, m, rdd[ (k, V) | (k, (__a, __b)) <- As.cogroup(Bs) ])\n"
            "As = A.tiles.flatMap { ((i,k),a) => (0 until m/N).map(q => ((gx(i,k),q),(kx(i,k),a))) }\n"
            "Bs = B.tiles.flatMap { ((kk,j),b) => (0 until n/N).map(p => ((p,gy(kk,j)),(ky(kk,j),b))) }\n"
            f"V accumulates ⊕/{to_source(match.term)} over matching tile pairs"
        ),
        details={
            "replication": f"A x{match.grid_cols}, B x{match.grid_rows}",
            "monoid": match.mon.name,
        },
        payload=dict(
            setup=setup, match=match, builder=builder, args=args,
        ),
    )
    return root


def emit_broadcast(
    setup: TiledSetup,
    match: GbjMatch,
    builder: str,
    args: tuple,
    side: str,
    reduce_partitions: Optional[int] = None,
) -> IRNode:
    """Map-side join: broadcast the small ``side``, stream the large side.

    ``reduce_partitions`` is the cost model's recommended partition
    count for the final reduceByKey (defaults to the large side's
    partitioning when omitted).
    """
    small_is_left = side == "left"
    strategy = (
        STRATEGY_BROADCAST_LEFT if small_is_left else STRATEGY_BROADCAST_RIGHT
    )
    small = match.left_gen if small_is_left else match.right_gen
    large = match.right_gen if small_is_left else match.left_gen
    small_node = IRNode(
        op=OP_BROADCAST,
        children=(scan_gen_node(small),),
        sig=(("side", side),),
        label=side,
    )
    large_node = scan_gen_node(large)
    children = (
        (small_node, large_node) if small_is_left else (large_node, small_node)
    )
    join = IRNode(
        op=OP_GROUP_BY_JOIN,
        children=children,
        sig=_gbj_sig(match) + (
            ("strategy", strategy),
            ("reduce_partitions", reduce_partitions),
        ),
        attrs={"strategy": strategy, "monoid": match.mon.name},
        label="broadcast",
    )
    root = IRNode(
        op=OP_ASSEMBLE,
        children=(join,),
        sig=assemble_sig(setup, builder, args),
    )
    root.attrs.update(
        rule=RULE_GROUP_BY_JOIN,
        builder=builder,
        strategy=strategy,
        reusable=True,
        description=(
            f"group-by-join (broadcast): small {side} side broadcast to "
            "every task; partial tiles merged with reduceByKey"
        ),
        pseudocode=(
            "small = sc.broadcast(S.tiles.collect().groupBy(join coord))\n"
            "Tiled(n, m, L.tiles.flatMap { t => small(k(t)).map(s => (key, contract(s, t))) }\n"
            "            .reduceByKey(⊗′))"
        ),
        details={"broadcast_side": side, "monoid": match.mon.name},
        payload=dict(
            setup=setup, match=match, builder=builder, args=args,
            side=side, reduce_partitions=reduce_partitions,
        ),
    )
    return root


# ----------------------------------------------------------------------
# Adaptive re-optimization (runtime strategy downgrade)
# ----------------------------------------------------------------------


def measure_gen_size(gen: ResolvedGen) -> Optional[tuple[int, int]]:
    """Measured (bytes, stored records) of a generator's *materialized*
    tiles, or None when they are not materialized yet.

    Walks the generator's tile lineage through narrow maps to its base:
    a parallelized collection (driver-resident, so already "materialized")
    or a wide dependency that has run its shuffle.  The base's stored
    records are priced with a fresh :class:`RecordSizeAccountant` on the
    driver — no job runs and no engine counter moves, so measurement is
    free to call before deciding whether to re-plan.  The record count at
    the base equals the stored-tile count (the narrow chain above it is
    the storage's 1:1 tile finishing, not a replication).
    """
    from ..engine.rdd import (
        CoGroupedRDD, MapPartitionsRDD, ParallelCollectionRDD, ShuffledRDD,
    )

    node = gen.tiles
    while isinstance(node, MapPartitionsRDD):
        node = node._parent
    if isinstance(node, ParallelCollectionRDD):
        partitions = node._slices
    elif isinstance(node, (ShuffledRDD, CoGroupedRDD)):
        partitions = node._output
        if partitions is None:
            return None
    else:
        return None
    accountant = RecordSizeAccountant()
    nbytes = 0
    records = 0
    for part in partitions:
        part = list(part)
        nbytes += accountant.batch_size(part)
        records += len(part)
    return nbytes, records


def reconsider_join_strategy(
    engine,
    setup: TiledSetup,
    match: GbjMatch,
    candidates: dict,
    chosen: str,
    builder: str,
    args: tuple,
) -> Optional[tuple]:
    """Re-cost a cost-chosen group-by-join from measured input sizes.

    Called by the planner's adaptive wrapper just before the plan's
    thunk runs.  Both sides are measured (when materialized), the
    measurements are recorded on the engine's
    :class:`~repro.engine.adaptive.AdaptiveManager` so *later* compiles
    price with facts, and the candidates are re-costed with the measured
    overrides.  Only a **downgrade to broadcast** is acted on — the
    cheap, low-risk correction when a side turned out far smaller than
    its recorded statistics claimed (e.g. stats were stripped, or an
    upstream filter was underestimated) — and only when the measured
    side actually fits the cluster's per-copy broadcast budget.

    Returns ``(replacement_thunk, new_strategy)`` or None to keep the
    compile-time choice.
    """
    from .cost import (
        STRATEGY_BROADCAST_LEFT, STRATEGY_BROADCAST_RIGHT, STRATEGY_REPLICATE,
        STRATEGY_TILED_REDUCE, CostModel, choose_strategy,
    )

    manager = getattr(engine, "adaptive", None)
    if manager is None or not manager.enabled:
        return None
    fresh = False
    for gen in (match.left_gen, match.right_gen):
        storage = getattr(gen, "storage", None)
        if storage is None:
            continue
        size = measure_gen_size(gen)
        if size is not None:
            manager.record_measured_size(storage, *size)
            fresh = True
    if not fresh:
        return None

    model = CostModel(
        engine.cluster, engine.default_parallelism,
        measured=manager.measured_sizes,
        memory_limit=getattr(engine, "memory_limit", None),
    )
    recost = model.candidates(setup, match)
    allowed = [
        STRATEGY_REPLICATE, STRATEGY_BROADCAST_LEFT,
        STRATEGY_BROADCAST_RIGHT, STRATEGY_TILED_REDUCE,
    ]
    new_strategy = choose_strategy(recost, allowed)
    if new_strategy == chosen or new_strategy not in (
        STRATEGY_BROADCAST_LEFT, STRATEGY_BROADCAST_RIGHT
    ):
        return None
    estimate = recost[new_strategy]
    per_copy = estimate.broadcast_bytes / (1 + engine.cluster.num_executors)
    if per_copy > engine.cluster.adaptive_broadcast_bytes:
        return None

    side = "left" if new_strategy == STRATEGY_BROADCAST_LEFT else "right"
    small = match.left_gen if side == "left" else match.right_gen
    small_size = manager.measured_sizes.get(id(small.storage))
    old_estimate = candidates.get(chosen)
    manager.record_decision(AdaptiveDecision(
        kind="broadcast-downgrade",
        description=(
            f"measured {side} side fits the broadcast budget; "
            f"switched {chosen} -> {new_strategy} before launching the join"
        ),
        measured={
            "side": side,
            "side_bytes": small_size[0] if small_size else None,
            "side_tiles": small_size[1] if small_size else None,
            "per_copy_bytes": int(per_copy),
            "new_total_seconds": round(estimate.total_seconds, 6),
            "new_shuffle_bytes": estimate.shuffle_bytes,
        },
        estimate={
            "strategy": chosen,
            "total_seconds": (
                round(old_estimate.total_seconds, 6) if old_estimate else None
            ),
            "shuffle_bytes": (
                old_estimate.shuffle_bytes if old_estimate else None
            ),
        },
    ))
    from .lower import build_broadcast_thunk

    replacement = build_broadcast_thunk(
        setup, match, builder, args, side,
        reduce_partitions=estimate.reduce_partitions,
    )
    return replacement, new_strategy
