"""Translation of array comprehensions to distributed engine plans.

Implements the paper's translation scheme: Section 4's generic RDD rules
(13/14) in :mod:`rdd_rules`, Section 5's block-array rules in
:mod:`tiling` (5.1–5.3) and :mod:`groupby_join` (5.4), with rule
dispatch in :mod:`planner` and NumPy tile kernels in :mod:`kernels`.
"""

from .analysis import CompInfo, GenInfo, JoinCond, ReductionSlot, analyze
from .codegen import explain
from .cost import (
    CostEstimate, CostModel, STRATEGY_BROADCAST_LEFT, STRATEGY_BROADCAST_RIGHT,
    STRATEGY_COORDINATE, STRATEGY_REPLICATE, STRATEGY_TILED_REDUCE,
    choose_strategy,
)
from .kernels import (
    KernelUnsupported, compile_vectorized, compile_vectorized_cached, contract,
    gather,
)
from .plan import (
    Plan, RULE_COORDINATE, RULE_GROUP_BY_JOIN, RULE_LOCAL, RULE_LOCAL_CODEGEN,
    RULE_PRESERVE_TILING, RULE_TILED_REDUCE, RULE_TILED_SHUFFLE,
)
from .planner import PlannerOptions, plan_query

__all__ = [
    "CompInfo",
    "CostEstimate",
    "CostModel",
    "GenInfo",
    "JoinCond",
    "KernelUnsupported",
    "Plan",
    "PlannerOptions",
    "STRATEGY_BROADCAST_LEFT",
    "STRATEGY_BROADCAST_RIGHT",
    "STRATEGY_COORDINATE",
    "STRATEGY_REPLICATE",
    "STRATEGY_TILED_REDUCE",
    "RULE_COORDINATE",
    "RULE_GROUP_BY_JOIN",
    "RULE_LOCAL",
    "RULE_LOCAL_CODEGEN",
    "RULE_PRESERVE_TILING",
    "RULE_TILED_REDUCE",
    "RULE_TILED_SHUFFLE",
    "ReductionSlot",
    "analyze",
    "choose_strategy",
    "compile_vectorized",
    "compile_vectorized_cached",
    "contract",
    "explain",
    "gather",
    "plan_query",
]
