"""Translation of array comprehensions to distributed engine plans.

Implements the paper's translation scheme over an explicit two-level
plan IR (:mod:`ir`): Section 4's generic RDD rules (13/14) in
:mod:`rdd_rules`, Section 5's block-array rules in :mod:`tiling`
(5.1–5.3) and :mod:`groupby_join` (5.4), all *emitting IR nodes*; the
named pass pipeline (:mod:`passes`) decides and annotates, the single
lowering site (:mod:`lower`) builds the RDD program, and :mod:`planner`
composes the two.  NumPy tile kernels live in :mod:`kernels`.
"""

from .analysis import CompInfo, GenInfo, JoinCond, ReductionSlot, analyze
from .codegen import (
    FusedKernel, KERNEL_CACHE, KernelCache, explain, generate_fused_kernel,
)
from .cost import (
    CostEstimate, CostModel, STRATEGY_BROADCAST_LEFT, STRATEGY_BROADCAST_RIGHT,
    STRATEGY_COORDINATE, STRATEGY_REPLICATE, STRATEGY_TILED_REDUCE,
    choose_strategy,
)
from .ir import IRNode, PassTraceEntry
from .kernels import (
    KernelUnsupported, compile_vectorized, compile_vectorized_cached, contract,
    gather,
)
from .passes import (
    PassManager, PlanState, cse_enabled, default_passes, fusion_enabled,
)
from .plan import (
    Plan, RULE_COORDINATE, RULE_GROUP_BY_JOIN, RULE_LOCAL, RULE_LOCAL_CODEGEN,
    RULE_PRESERVE_TILING, RULE_TILED_REDUCE, RULE_TILED_SHUFFLE,
)
from .planner import PlannerOptions, plan_query, plan_state

__all__ = [
    "CompInfo",
    "IRNode",
    "PassManager",
    "PassTraceEntry",
    "PlanState",
    "CostEstimate",
    "CostModel",
    "FusedKernel",
    "GenInfo",
    "JoinCond",
    "KERNEL_CACHE",
    "KernelCache",
    "KernelUnsupported",
    "Plan",
    "PlannerOptions",
    "STRATEGY_BROADCAST_LEFT",
    "STRATEGY_BROADCAST_RIGHT",
    "STRATEGY_COORDINATE",
    "STRATEGY_REPLICATE",
    "STRATEGY_TILED_REDUCE",
    "RULE_COORDINATE",
    "RULE_GROUP_BY_JOIN",
    "RULE_LOCAL",
    "RULE_LOCAL_CODEGEN",
    "RULE_PRESERVE_TILING",
    "RULE_TILED_REDUCE",
    "RULE_TILED_SHUFFLE",
    "ReductionSlot",
    "analyze",
    "choose_strategy",
    "cse_enabled",
    "default_passes",
    "fusion_enabled",
    "compile_vectorized",
    "compile_vectorized_cached",
    "contract",
    "explain",
    "gather",
    "generate_fused_kernel",
    "plan_query",
    "plan_state",
]
