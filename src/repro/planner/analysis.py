"""Comprehension analysis: the structure the translation rules match on.

A normalized, flat comprehension is decomposed into:

* **generators** over storages (tiled arrays, local arrays, RDDs of
  coordinate pairs) or index ranges, each binding index variables and a
  value variable;
* **join conditions** — equality guards linking variables of different
  generators (or expressions each depending on a single generator: the
  ``kx(i,j) == ky(ii,jj)`` form of the group-by-join rule);
* an **equivalence relation** over index variables induced by
  variable-to-variable equality guards (union-find);
* the **group-by key** and the **reduction structure** of the head: every
  use of lifted variables abstracted as ``⊕/g(vars)`` slots plus a
  residual function ``f`` over the slots (Section 3's
  ``f(⊕1/w1.map(g1), ..., ⊕m/wm.map(gm))`` decomposition).

Let-bindings are inlined (for analysis only) so the slots' ``g``
expressions mention generator-bound variables directly — ``let v = a*b,
group by (i,j)`` followed by ``+/v`` yields the slot ``(+, a*b)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..comprehension.ast import (
    BinOp, Comprehension, Expr, Generator, GroupByQual, Guard, LetQual, Lit,
    Node, Pattern, Qualifier, RangeExpr, Reduce, TupleExpr, TuplePat, Var,
    VarPat, WildPat, free_vars, pattern_to_expr, pattern_vars,
)
from ..comprehension.desugar import rewrite_bottom_up
from ..comprehension.errors import SacPlanError
from ..comprehension.monoids import is_monoid


@dataclass
class GenInfo:
    """One generator over an association-list source.

    ``index_vars`` are the variables of the key pattern (flattened) and
    ``value_var`` the variable bound to the element value (``None`` for a
    wildcard).  ``source`` is the *expression*; the planner resolves it to
    a storage against the environment.
    """

    index_vars: list[str]
    value_var: Optional[str]
    source: Expr
    position: int

    @property
    def arity(self) -> int:
        return len(self.index_vars)


@dataclass
class RangeGen:
    """A generator over an index range ``v <- lo until hi``."""

    var: str
    lo: Expr
    hi: Expr
    position: int


@dataclass
class JoinCond:
    """An equality guard usable as a join: ``left == right`` with each
    side's variables drawn from a single (distinct) generator."""

    left: Expr
    right: Expr
    left_gen: int
    right_gen: int


@dataclass
class ReductionSlot:
    """One ``⊕/g(vars)`` aggregation extracted from the head."""

    monoid: str
    expr: Expr  # g, over generator-bound variables
    slot_var: str


@dataclass
class CompInfo:
    """Full analysis result for one flat comprehension."""

    comp: Comprehension
    generators: list[GenInfo] = field(default_factory=list)
    ranges: list[RangeGen] = field(default_factory=list)
    joins: list[JoinCond] = field(default_factory=list)
    residual_guards: list[Expr] = field(default_factory=list)
    lets: dict[str, Expr] = field(default_factory=dict)
    group_key_vars: Optional[list[str]] = None
    #: analysis-time expansion of each group key variable
    group_key_exprs: Optional[list[Expr]] = None
    head_key: Optional[Expr] = None
    head_value: Optional[Expr] = None
    #: value expression with reductions abstracted into slots
    residual_value: Optional[Expr] = None
    slots: list[ReductionSlot] = field(default_factory=list)
    post_group_quals: list[Qualifier] = field(default_factory=list)

    # -- derived helpers ------------------------------------------------

    def var_class(self) -> dict[str, int]:
        """Union-find classes of index variables linked by ``==`` guards."""
        parent: dict[str, str] = {}

        def find(x: str) -> str:
            parent.setdefault(x, x)
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for gen in self.generators:
            for var in gen.index_vars:
                parent.setdefault(var, var)
        for rng in self.ranges:
            parent.setdefault(rng.var, rng.var)
        for join in self.joins:
            if isinstance(join.left, Var) and isinstance(join.right, Var):
                parent[find(join.left.name)] = find(join.right.name)
        # Same-generator equalities (e.g. the diagonal's ``i == j``) also
        # unify dimensions; they stay as residual guards for masking.
        for guard in self.residual_guards:
            if (
                isinstance(guard, BinOp)
                and guard.op == "=="
                and isinstance(guard.left, Var)
                and isinstance(guard.right, Var)
                and guard.left.name in parent
                and guard.right.name in parent
            ):
                parent[find(guard.left.name)] = find(guard.right.name)
        roots: dict[str, int] = {}
        classes: dict[str, int] = {}
        for var in list(parent):
            root = find(var)
            if root not in roots:
                roots[root] = len(roots)
            classes[var] = roots[root]
        return classes

    def generator_of(self, var: str) -> Optional[int]:
        """Index of the generator binding ``var`` (index or value)."""
        for gen in self.generators:
            if var in gen.index_vars or var == gen.value_var:
                return gen.position
        return None


def analyze(comp: Comprehension) -> CompInfo:
    """Decompose a flat (desugared + normalized) comprehension."""
    info = CompInfo(comp=comp)
    saw_group_by = False

    for qual in comp.qualifiers:
        if isinstance(qual, GroupByQual):
            if saw_group_by:
                raise SacPlanError("multiple group-by qualifiers are not planned; "
                                   "use the reference interpreter")
            if qual.pattern is None or qual.key is not None:
                raise SacPlanError("group-by must be desugared before planning")
            saw_group_by = True
            info.group_key_vars = pattern_vars(qual.pattern)
            continue
        if saw_group_by:
            info.post_group_quals.append(qual)
            continue
        if isinstance(qual, Generator):
            _add_generator(info, qual)
        elif isinstance(qual, LetQual):
            _add_let(info, qual)
        elif isinstance(qual, Guard):
            _add_guard(info, qual.expr)
        else:
            raise SacPlanError(f"unexpected qualifier {type(qual).__name__}")

    if info.group_key_vars is not None:
        info.group_key_exprs = [
            _expand_lets(Var(name), info.lets) for name in info.group_key_vars
        ]

    _analyze_head(info)
    return info


# ----------------------------------------------------------------------


def _add_generator(info: CompInfo, qual: Generator) -> None:
    if isinstance(qual.source, RangeExpr):
        if not isinstance(qual.pattern, VarPat):
            raise SacPlanError(
                f"range generators bind one variable, got pattern {qual.pattern}"
            )
        info.ranges.append(
            RangeGen(qual.pattern.name, qual.source.lo, qual.source.hi,
                     len(info.generators) + len(info.ranges))
        )
        return
    pattern = qual.pattern
    if not isinstance(pattern, TuplePat) or len(pattern.items) != 2:
        raise SacPlanError(
            f"association-list generators match (key, value) pairs; got {pattern}"
        )
    key_pat, value_pat = pattern.items
    index_vars = _flat_vars(key_pat)
    # Wildcards in the index pattern get unique placeholder names so they
    # do not alias each other in the class analysis.
    index_vars = [
        f"_$g{len(info.generators)}w{i}" if name == "_" else name
        for i, name in enumerate(index_vars)
    ]
    if isinstance(value_pat, VarPat):
        value_var: Optional[str] = value_pat.name
    elif isinstance(value_pat, WildPat):
        value_var = None
    else:
        raise SacPlanError(f"value pattern must be a variable, got {value_pat}")
    info.generators.append(
        GenInfo(index_vars, value_var, qual.source, len(info.generators))
    )


def _flat_vars(pattern: Pattern) -> list[str]:
    if isinstance(pattern, VarPat):
        return [pattern.name]
    if isinstance(pattern, TuplePat):
        out: list[str] = []
        for item in pattern.items:
            out.extend(_flat_vars(item))
        return out
    if isinstance(pattern, WildPat):
        return ["_"]
    raise SacPlanError(f"unsupported index pattern {pattern}")


def _add_let(info: CompInfo, qual: LetQual) -> None:
    if not isinstance(qual.pattern, VarPat):
        # Tuple lets are rare after normalization; treat components as
        # opaque (forces the fallback paths).
        raise SacPlanError(f"tuple let patterns are not planned: {qual.pattern}")
    info.lets[qual.pattern.name] = _expand_lets(qual.expr, info.lets)


def _add_guard(info: CompInfo, expr: Expr) -> None:
    expanded = _expand_lets(expr, info.lets)
    if isinstance(expanded, BinOp) and expanded.op == "==":
        left_gen = _sole_generator(info, expanded.left)
        right_gen = _sole_generator(info, expanded.right)
        if (
            left_gen is not None
            and right_gen is not None
            and left_gen != right_gen
        ):
            info.joins.append(JoinCond(expanded.left, expanded.right, left_gen, right_gen))
            return
    info.residual_guards.append(expanded)


def _sole_generator(info: CompInfo, expr: Expr) -> Optional[int]:
    """The unique generator whose variables ``expr`` uses, if unique."""
    gens = set()
    for var in free_vars(expr):
        owner = info.generator_of(var)
        if owner is not None:
            gens.add(owner)
    if len(gens) == 1:
        return gens.pop()
    return None


def _expand_lets(expr: Expr, lets: dict[str, Expr]) -> Expr:
    if not lets:
        return expr

    def visit(node: Node) -> Node:
        if isinstance(node, Var) and node.name in lets:
            return lets[node.name]
        return node

    return rewrite_bottom_up(expr, visit)  # type: ignore[return-value]


def _analyze_head(info: CompInfo) -> None:
    head = info.comp.head
    if isinstance(head, TupleExpr) and len(head.items) == 2:
        info.head_key = _expand_lets(head.items[0], info.lets)
        info.head_value = _expand_lets(head.items[1], info.lets)
    else:
        info.head_key = None
        info.head_value = _expand_lets(head, info.lets)
    if info.group_key_vars is None:
        info.residual_value = info.head_value
        return
    # Abstract reductions into slots (Section 3).
    counter = [0]
    slots: list[ReductionSlot] = []

    def visit(node: Node) -> Node:
        if isinstance(node, Reduce):
            name = f"agg${counter[0]}"
            counter[0] += 1
            mon = node.monoid
            expr = _expand_lets(node.expr, info.lets)
            if mon == "count":
                mon, expr = "+", Lit(1)
            if not is_monoid(mon):
                raise SacPlanError(f"cannot plan reduction by {node.monoid!r}")
            slots.append(ReductionSlot(mon, expr, name))
            return Var(name)
        return node

    info.residual_value = rewrite_bottom_up(info.head_value, visit)  # type: ignore[assignment]
    info.slots = slots


def key_components(key: Optional[Expr]) -> list[Expr]:
    """The components of a head key (a tuple, or a single expression)."""
    if key is None:
        return []
    if isinstance(key, TupleExpr):
        return list(key.items)
    return [key]
