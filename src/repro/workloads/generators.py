"""Workload generators reproducing the paper's evaluation inputs.

Section 6: addition/multiplication use square matrices of uniform random
values in [0, 10); factorization uses a square rating matrix with 10 %
non-zero integer ratings in 0–5 and factors initialized uniformly in
[0, 1).  All generators are seeded for reproducibility.
"""

from __future__ import annotations

import numpy as np


def dense_uniform(
    rows: int, cols: int, seed: int = 0, low: float = 0.0, high: float = 10.0
) -> np.ndarray:
    """Dense matrix of uniform values — the add/multiply workload."""
    rng = np.random.default_rng(seed)
    return rng.uniform(low, high, size=(rows, cols))


def rating_matrix(
    n: int, density: float = 0.10, max_rating: int = 5, seed: int = 0
) -> np.ndarray:
    """The factorization workload: ``n×n``, ``density`` of the entries are
    non-zero integer ratings in ``1..max_rating`` (stored dense, as the
    paper's block representation does)."""
    rng = np.random.default_rng(seed)
    ratings = rng.integers(1, max_rating + 1, size=(n, n)).astype(np.float64)
    mask = rng.random((n, n)) < density
    return np.where(mask, ratings, 0.0)


def factor_matrix(rows: int, rank: int, seed: int = 0) -> np.ndarray:
    """Initial factor: uniform values in [0, 1)."""
    rng = np.random.default_rng(seed)
    return rng.random((rows, rank))


def adjacency_matrix(n: int, edge_probability: float = 0.2, seed: int = 0) -> np.ndarray:
    """Random directed graph adjacency (for the PageRank example)."""
    rng = np.random.default_rng(seed)
    adj = (rng.random((n, n)) < edge_probability).astype(np.float64)
    np.fill_diagonal(adj, 0.0)
    return adj


def zipf_block_rows(
    rows: int,
    cols: int,
    tile_size: int,
    alpha: float = 1.5,
    seed: int = 0,
    low: float = 0.0,
    high: float = 10.0,
) -> np.ndarray:
    """Skewed sparse matrix: tile density decays zipf-like by block row.

    Block row ``r`` keeps a ``1/(r+1)^alpha`` fraction of its tiles
    (kept tiles are fully dense, dropped tiles all-zero), so the first
    block row is fully populated and the tail is sparse — the hot-key
    shape behind the paper's Section 5.3 skew discussion: joining on a
    dimension whose first block carries most of the data funnels most
    partial products through one reducer.  Values of kept tiles are
    uniform in ``[low, high)``; everything is seeded.
    """
    rng = np.random.default_rng(seed)
    out = np.zeros((rows, cols))
    grid_rows = -(-rows // tile_size)
    grid_cols = -(-cols // tile_size)
    for r in range(grid_rows):
        keep = 1.0 / float(r + 1) ** alpha
        for c in range(grid_cols):
            if r == 0 or rng.random() < keep:
                r0, c0 = r * tile_size, c * tile_size
                r1, c1 = min(r0 + tile_size, rows), min(c0 + tile_size, cols)
                out[r0:r1, c0:c1] = rng.uniform(
                    low, high, size=(r1 - r0, c1 - c0)
                )
    return out


def regression_data(
    samples: int, features: int, noise: float = 0.1, seed: int = 0
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Synthetic linear-regression data: returns (X, y, true_weights)."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(samples, features))
    w = rng.normal(size=features)
    y = x @ w + noise * rng.normal(size=samples)
    return x, y, w
