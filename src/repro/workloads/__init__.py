"""Seeded workload generators for tests, examples, and benchmarks."""

from .generators import (
    adjacency_matrix, dense_uniform, factor_matrix, rating_matrix,
    regression_data, zipf_block_rows,
)

__all__ = [
    "adjacency_matrix",
    "dense_uniform",
    "factor_matrix",
    "rating_matrix",
    "regression_data",
    "zipf_block_rows",
]
