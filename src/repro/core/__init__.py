"""SAC public API: sessions, array handles, and named operations."""

from . import ops
from .array import SacMatrix, SacVector, matrix, vector
from .session import CompiledQuery, SacSession

__all__ = [
    "CompiledQuery",
    "SacMatrix",
    "SacSession",
    "SacVector",
    "matrix",
    "ops",
    "vector",
]
