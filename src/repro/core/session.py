"""``SacSession``: the front door of the library.

A session ties together the engine (simulated cluster), the tile size,
and planner options, and runs DSL queries end to end::

    from repro import SacSession
    session = SacSession(tile_size=100)
    A = session.tiled(numpy_array)
    B = session.tiled(other_array)
    C = session.run(
        "tiled(n, m)[ ((i,j), +/v) | ((i,k),a) <- A, ((kk,j),b) <- B, "
        "kk == k, let v = a*b, group by (i,j) ]",
        A=A, B=B, n=n, m=m)

Pipeline per query: parse → desugar (indexing, group-by forms) →
normalize (unnesting, guard pushdown, range fusion) → plan (rule
dispatch) → execute.  ``explain`` returns the compilation report without
running anything.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from ..comprehension import (
    Expr, FreshNames, Interpreter, desugar, normalize, parse,
)
from ..engine import PAPER_CLUSTER, ClusterSpec, EngineContext, RDD, env_flag
from ..engine.substrate import LruCache
from ..planner import Plan, PlannerOptions, cse_enabled, plan_state
from ..planner.lower import lower
from ..planner.codegen import explain as explain_plan
from ..storage import TiledMatrix, TiledVector
from ..storage.registry import REGISTRY, BuildContext

#: The session-level caches moved up to the substrate
#: (:class:`repro.engine.substrate.PlanCacheGroup`) so same-shaped
#: sessions share compile hits; the name survives for importers.
_LruCache = LruCache


@dataclass
class CompiledQuery:
    """A query carried through the full pipeline, ready to execute."""

    source: str
    parsed: Expr
    normalized: Expr
    plan: Plan

    def execute(self) -> Any:
        return self.plan.execute()

    def explain(self) -> str:
        return explain_plan(self.plan, self.parsed, self.normalized)


class SacSession:
    """Compiles and runs SAC array comprehensions.

    Args:
        engine: engine context to run distributed plans on; created from
            ``cluster`` when omitted.
        cluster: simulated cluster spec for a fresh engine.
        tile_size: side length N of square tiles for block arrays.
        options: planner rule switches (ablations).
        num_partitions: partition hint for builders.
        runner: task execution strategy for a fresh engine — a
            ``TaskRunner``, ``"serial"``, or ``"threads"``; ``None``
            consults the ``REPRO_RUNNER`` environment variable.
        memory_budget: cached-partition byte cap for a fresh engine's
            block manager (``None`` = unbounded).
        memory_limit: out-of-core memory cap for a fresh engine — caps
            resident block bytes like ``memory_budget`` but evicted
            partitions *spill to disk* and restore transparently
            instead of being dropped for recompute.  Accepts a byte
            count or a ``"64M"``-style string; ``None`` (default)
            consults the ``REPRO_MEMORY_LIMIT`` environment variable
            and otherwise leaves the tier off (byte-identical to the
            limit-free engine).
        adaptive: adaptive query execution — measure map outputs at
            stage boundaries and re-optimize (broadcast downgrades,
            partition coalescing, skew splits).  ``None`` (default)
            consults the ``REPRO_ADAPTIVE`` environment variable and
            otherwise enables it; pass ``False`` for the static planner
            (byte-identical to the pre-adaptive engine).  When an
            ``engine`` is supplied, a non-``None`` value overrides that
            engine's setting.
        pipeline: task-graph (pipelined) job execution — break the stage
            barrier and fire each task as soon as the partitions it
            reads have landed.  ``None`` (default) consults the
            ``REPRO_PIPELINE`` environment variable and otherwise
            enables it only for a ``PipelinedTaskRunner``; off, the
            staged scheduler runs with byte-identical metrics counters.
            When an ``engine`` is supplied, a non-``None`` value
            overrides that engine's setting.
        tenant: tenant label for multi-tenant substrates.  ``None``
            (default) inherits the engine view's tenant (empty for a
            private engine).  A labeled session's queries are gated by
            the substrate's admission control and counted in per-tenant
            metrics, and its cached blocks are charged to its quota.
        quota: resident-block byte cap for this session's tenant
            (``"64M"``-style strings accepted); only meaningful with a
            named tenant on a budgeted substrate.
        reservation: residency floor other tenants' evictions cannot
            push this tenant below.
    """

    def __init__(
        self,
        engine: Optional[EngineContext] = None,
        cluster: ClusterSpec = PAPER_CLUSTER,
        tile_size: int = 100,
        options: Optional[PlannerOptions] = None,
        num_partitions: Optional[int] = None,
        runner: Any = None,
        memory_budget: Optional[int] = None,
        adaptive: Optional[bool] = None,
        pipeline: Optional[bool] = None,
        memory_limit: Optional[int | str] = None,
        tenant: Optional[str] = None,
        quota: Optional[int | str] = None,
        reservation: Optional[int | str] = None,
    ):
        if engine is None:
            if adaptive is None:
                adaptive = env_flag("REPRO_ADAPTIVE", True)
            engine = EngineContext(
                cluster=cluster, runner=runner, memory_budget=memory_budget,
                adaptive=adaptive, pipeline=pipeline,
                memory_limit=memory_limit,
                tenant=tenant or "", quota=quota, reservation=reservation,
            )
        elif (
            adaptive is not None
            or pipeline is not None
            or tenant is not None
            or quota is not None
            or reservation is not None
        ):
            # Per-session overrides become a fresh view over the same
            # substrate — never an in-place mutation of the caller's
            # engine, which other sessions may share.
            engine = engine.view(
                tenant=tenant, adaptive=adaptive, pipeline=pipeline,
                quota=quota, reservation=reservation,
            )
        self.engine = engine
        self.tenant = getattr(engine, "tenant", "") or ""
        self.tile_size = tile_size
        self.options = options or PlannerOptions()
        self.build_context = BuildContext(
            engine=self.engine,
            tile_size=tile_size,
            num_partitions=num_partitions,
        )
        # Iterative algorithms re-submit identical query text every step;
        # parsing is pure, so cache the ASTs, and the (parsed,
        # normalized) pair is cached per storage signature of the
        # bindings.  Lowering always re-runs against the live
        # environment, so a cached compile builds fresh RDD lineages.
        # The caches live on the substrate (PlanCacheGroup), so sessions
        # sharing an engine share hits; every key carries this session's
        # build profile (see _plan_cache_key), so differently-shaped
        # sessions can never serve each other stale entries.
        caches = self.engine.substrate.plan_caches
        self._parse_cache = caches.parse
        self._plan_cache = caches.plan
        # Whole-Plan reuse across compiles, keyed by the plan's IR
        # fingerprint (only set when common-subplan elimination is on).
        # Handing back the earlier Plan object lets repeated steps of an
        # iterative workload share lowered RDD lineages — and therefore
        # the shuffle outputs the CSE pass marked for reuse.
        self._compiled_plan_cache = caches.compiled
        # Pass-pipeline reuse: the finished PlanState for one compile,
        # keyed by the front-half key *plus* binding identities (see
        # _pass_cache_key).  A hit skips straight to lowering, which
        # still runs per compile so every plan gets fresh RDD lineages
        # and execution stays byte-identical to an uncached compile.
        self._pass_cache = caches.passes

    def _parse_cached(self, query: str) -> Expr:
        cached = self._parse_cache.get(query)
        if cached is None:
            cached = parse(query)
            self._parse_cache.put(query, cached)
        return cached

    # ------------------------------------------------------------------

    def _binding_signature(self, value: Any) -> Any:
        """Hashable description of one binding for the plan-cache key.

        Captures everything the parse→normalize front half *and* the
        rule dispatch depend on: whether the name is an array, its
        storage class, tile shape, and how its tiles are partitioned.
        Tile *contents* are deliberately excluded — plans are re-derived
        against the live environment on every compile, cached or not.
        """
        if isinstance(value, RDD):
            return ("rdd", value.num_partitions,
                    self._partitioner_signature(value.partitioner))
        if not REGISTRY.is_storage(value):
            return ("scalar", type(value).__name__)
        sig: tuple = (type(value).__name__,)
        tiles = getattr(value, "tiles", None) or getattr(value, "blocks", None)
        if isinstance(tiles, RDD):
            sig += (tiles.num_partitions,
                    self._partitioner_signature(tiles.partitioner))
        for attr in ("rows", "cols", "length", "tile_size"):
            dim = getattr(value, attr, None)
            if isinstance(dim, int):
                sig += (attr, dim)
        return sig

    @staticmethod
    def _partitioner_signature(partitioner: Any) -> Any:
        if partitioner is None:
            return None
        return (type(partitioner).__name__,) + tuple(
            sorted((k, repr(v)) for k, v in vars(partitioner).items())
        )

    def _plan_cache_key(
        self, query: str, full_env: dict[str, Any]
    ) -> Optional[tuple]:
        """Cache key for the parse→normalize front half and plan reuse.

        Besides the query text and binding signatures, the key carries
        everything else a compile's outcome depends on: the planner
        option switches (strategy overrides, CSE), whether adaptive
        re-optimization is armed, and the session's build profile (tile
        size, partition hint, pipelined execution) — so toggling any of
        those between compiles, or another same-substrate session with
        a different shape, can never serve a stale cached result.
        """
        try:
            bindings = tuple(
                sorted(
                    (name, self._binding_signature(value))
                    for name, value in full_env.items()
                )
            )
            manager = getattr(self.engine, "adaptive", None)
            return (
                query,
                bindings,
                self.options.cache_signature(),
                bool(manager is not None and manager.enabled),
                (
                    self.tile_size,
                    self.build_context.num_partitions,
                    bool(getattr(self.engine, "pipeline", False)),
                ),
            )
        except TypeError:  # unsortable/unhashable binding: skip the cache
            return None

    def _pass_cache_key(
        self, key: tuple, full_env: dict[str, Any]
    ) -> Optional[tuple]:
        """Identity-level key for reusing a pass-pipeline result.

        The front-half key matches by *shape* (binding signatures
        exclude tile contents), but a finished PlanState closes over
        the live storage objects and scalar values, so reuse demands
        more: the same array objects — compared by ``id()``, which is
        stable here because the cached state keeps the storages alive —
        and equal scalar bindings (typed, so ``1``/``1.0``/``True``
        never alias).  Anything unhashable skips the cache.
        """
        try:
            entries = tuple(sorted(
                (name, ("id", id(value)))
                if REGISTRY.is_storage(value) or isinstance(value, RDD)
                else (name, ("val", type(value).__name__, value))
                for name, value in full_env.items()
            ))
            hash(entries)
        except TypeError:  # unsortable/unhashable binding: skip
            return None
        return (key, entries)

    def compile(
        self,
        query: str,
        env: Optional[dict[str, Any]] = None,
        *,
        cache: bool = True,
        **bindings: Any,
    ) -> CompiledQuery:
        """Run the query through parse → desugar → normalize → plan.

        The parse→normalize front half is cached per (query text,
        binding storage signatures), and the pass-pipeline back half is
        additionally reused when the bindings are the *same objects*
        (see :meth:`_pass_cache_key`); pass ``cache=False`` to bypass
        both.  Lowering always re-runs so every compile hands back a
        fresh plan over fresh RDD lineages — a cache hit produces a
        byte-identical execution, just without re-deriving the tree.
        """
        full_env = {**(env or {}), **bindings}
        key = self._plan_cache_key(query, full_env) if cache else None
        cached = self._plan_cache.get(key) if key is not None else None
        if key is not None and self.tenant:
            self.engine.metrics.record_tenant_plan_cache(
                self.tenant, hit=cached is not None
            )
        if cached is not None:
            parsed, normalized = cached
        else:
            parsed = self._parse_cached(query)
            fresh = FreshNames()

            def is_array(name: str) -> bool:
                value = full_env.get(name)
                return value is not None and (
                    REGISTRY.is_storage(value) or isinstance(value, RDD)
                )

            desugared = desugar(parsed, is_array=is_array, fresh=fresh)
            normalized = normalize(desugared, fresh=fresh)
            if key is not None:
                self._plan_cache.put(key, (parsed, normalized))
        # Back half: reuse the pass-pipeline result when the bindings
        # are identical objects (not merely same-shaped), then lower —
        # lowering always runs, so a cached compile builds the same
        # fresh RDD lineages an uncached one would.
        pass_key = self._pass_cache_key(key, full_env) if key is not None else None
        state = self._pass_cache.get(pass_key) if pass_key is not None else None
        if state is None:
            state = plan_state(
                normalized, full_env, self.engine, self.build_context,
                self.options,
            )
            if pass_key is not None:
                self._pass_cache.put(pass_key, state)
        plan = lower(state)
        # With CSE on, lowering fingerprints reusable plans; an earlier
        # compile with the same key + fingerprint produced a Plan whose
        # lowered lineages (and marked shuffle outputs) this one can
        # share outright.
        if key is not None and plan.fingerprint and cse_enabled(self.options):
            swap_key = (key, plan.fingerprint)
            prior = self._compiled_plan_cache.get(swap_key)
            if prior is not None:
                plan = prior
            else:
                self._compiled_plan_cache.put(swap_key, plan)
        return CompiledQuery(query, parsed, normalized, plan)

    def compile_stats(self) -> dict[str, dict[str, int]]:
        """Hit/miss/eviction counters for the parse and plan caches."""
        return {
            "parse_cache": self._parse_cache.stats(),
            "plan_cache": self._plan_cache.stats(),
            "compiled_plan_cache": self._compiled_plan_cache.stats(),
            "pass_cache": self._pass_cache.stats(),
        }

    def run(self, query: str, env: Optional[dict[str, Any]] = None, **bindings: Any) -> Any:
        """Compile and execute a query.

        Execution passes through the substrate's admission gate (a
        no-op unless the substrate bounds concurrent jobs); a labeled
        tenant's query count and latency land in per-tenant metrics.
        """
        start = time.perf_counter()
        try:
            compiled = self.compile(query, env, **bindings)
            with self.engine.substrate.admission.admit(self.tenant):
                if self.tenant:
                    # Attribute driver-thread engine events (reused
                    # shuffles over shared datasets, chiefly) to this
                    # tenant while its query runs.
                    with self.engine.metrics.tenant_scope(self.tenant):
                        result = compiled.execute()
                else:
                    result = compiled.execute()
        except Exception:
            if self.tenant:
                self.engine.metrics.record_tenant_query(
                    self.tenant, time.perf_counter() - start, error=True
                )
            raise
        if self.tenant:
            self.engine.metrics.record_tenant_query(
                self.tenant, time.perf_counter() - start
            )
        return result

    def explain(self, query: str, env: Optional[dict[str, Any]] = None, **bindings: Any) -> str:
        """The compilation report: normalized form, rule, pseudocode."""
        return self.compile(query, env, **bindings).explain()

    def interpret(self, query: str, env: Optional[dict[str, Any]] = None, **bindings: Any) -> Any:
        """Evaluate with the reference interpreter, bypassing the planner.

        Used by differential tests; also handy for queries the planner
        rejects (it is always correct, just not distributed).
        """
        full_env = {**(env or {}), **bindings}
        parsed = parse(query)
        fresh = FreshNames()

        def is_array(name: str) -> bool:
            value = full_env.get(name)
            return value is not None and (
                REGISTRY.is_storage(value) or isinstance(value, RDD)
            )

        expr = normalize(desugar(parsed, is_array=is_array, fresh=fresh), fresh=fresh)
        return Interpreter(full_env, build_context=self.build_context).evaluate(expr)

    # ------------------------------------------------------------------
    # Storage constructors
    # ------------------------------------------------------------------

    def tiled(
        self, array: np.ndarray, num_partitions: Optional[int] = None
    ) -> TiledMatrix:
        """Distribute a local 2-D array as a tiled matrix."""
        return TiledMatrix.from_numpy(
            self.engine, array, self.tile_size, num_partitions
        )

    def tiled_vector(
        self, array: np.ndarray, num_partitions: Optional[int] = None
    ) -> TiledVector:
        """Distribute a local 1-D array as a block vector."""
        return TiledVector.from_numpy(
            self.engine, array, self.tile_size, num_partitions
        )

    def sparse_tiled(self, array: np.ndarray, num_partitions: Optional[int] = None):
        """Distribute a local 2-D array as a CSC-tiled sparse matrix.

        All-zero tiles are dropped; within-tile storage is compressed
        sparse column (the paper's Section 8 extension).
        """
        from ..storage.sparse_tiled import SparseTiledMatrix

        return SparseTiledMatrix.from_numpy(
            self.engine, array, self.tile_size, num_partitions
        )

    def rdd(self, items, num_partitions: Optional[int] = None) -> RDD:
        """Distribute a local collection as an engine RDD."""
        return self.engine.parallelize(items, num_partitions)

    def matrix(self, array: np.ndarray):
        """Distribute a local 2-D array as an operator-friendly handle."""
        from .array import SacMatrix

        return SacMatrix(self, self.tiled(array))

    def vector(self, array: np.ndarray):
        """Distribute a local 1-D array as an operator-friendly handle."""
        from .array import SacVector

        return SacVector(self, self.tiled_vector(array))

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release the engine's executor pool."""
        self.engine.close()

    def __enter__(self) -> "SacSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def metrics_snapshot(self):
        return self.engine.metrics.snapshot()

    def metrics_delta(self, snapshot):
        return self.engine.metrics.delta_since(snapshot)

    def simulated_time(self) -> float:
        return self.engine.simulated_time()
