"""``SacSession``: the front door of the library.

A session ties together the engine (simulated cluster), the tile size,
and planner options, and runs DSL queries end to end::

    from repro import SacSession
    session = SacSession(tile_size=100)
    A = session.tiled(numpy_array)
    B = session.tiled(other_array)
    C = session.run(
        "tiled(n, m)[ ((i,j), +/v) | ((i,k),a) <- A, ((kk,j),b) <- B, "
        "kk == k, let v = a*b, group by (i,j) ]",
        A=A, B=B, n=n, m=m)

Pipeline per query: parse → desugar (indexing, group-by forms) →
normalize (unnesting, guard pushdown, range fusion) → plan (rule
dispatch) → execute.  ``explain`` returns the compilation report without
running anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from ..comprehension import (
    Expr, FreshNames, Interpreter, desugar, normalize, parse,
)
from ..engine import PAPER_CLUSTER, ClusterSpec, EngineContext, RDD
from ..planner import Plan, PlannerOptions, plan_query
from ..planner.codegen import explain as explain_plan
from ..storage import TiledMatrix, TiledVector
from ..storage.registry import REGISTRY, BuildContext


@dataclass
class CompiledQuery:
    """A query carried through the full pipeline, ready to execute."""

    source: str
    parsed: Expr
    normalized: Expr
    plan: Plan

    def execute(self) -> Any:
        return self.plan.execute()

    def explain(self) -> str:
        return explain_plan(self.plan, self.parsed, self.normalized)


class SacSession:
    """Compiles and runs SAC array comprehensions.

    Args:
        engine: engine context to run distributed plans on; created from
            ``cluster`` when omitted.
        cluster: simulated cluster spec for a fresh engine.
        tile_size: side length N of square tiles for block arrays.
        options: planner rule switches (ablations).
        num_partitions: partition hint for builders.
        runner: task execution strategy for a fresh engine — a
            ``TaskRunner``, ``"serial"``, or ``"threads"``; ``None``
            consults the ``REPRO_RUNNER`` environment variable.
        memory_budget: cached-partition byte cap for a fresh engine's
            block manager (``None`` = unbounded).
    """

    def __init__(
        self,
        engine: Optional[EngineContext] = None,
        cluster: ClusterSpec = PAPER_CLUSTER,
        tile_size: int = 100,
        options: Optional[PlannerOptions] = None,
        num_partitions: Optional[int] = None,
        runner: Any = None,
        memory_budget: Optional[int] = None,
    ):
        self.engine = engine or EngineContext(
            cluster=cluster, runner=runner, memory_budget=memory_budget
        )
        self.tile_size = tile_size
        self.options = options or PlannerOptions()
        self.build_context = BuildContext(
            engine=self.engine,
            tile_size=tile_size,
            num_partitions=num_partitions,
        )
        # Iterative algorithms re-submit identical query text every step;
        # parsing is pure, so cache the ASTs (desugar/normalize/planning
        # depend on the environment and still run per call).
        self._parse_cache: dict[str, Expr] = {}

    def _parse_cached(self, query: str) -> Expr:
        cached = self._parse_cache.get(query)
        if cached is None:
            cached = parse(query)
            if len(self._parse_cache) > 512:
                self._parse_cache.clear()
            self._parse_cache[query] = cached
        return cached

    # ------------------------------------------------------------------

    def compile(self, query: str, env: Optional[dict[str, Any]] = None, **bindings: Any) -> CompiledQuery:
        """Run the query through parse → desugar → normalize → plan."""
        full_env = {**(env or {}), **bindings}
        parsed = self._parse_cached(query)
        fresh = FreshNames()

        def is_array(name: str) -> bool:
            value = full_env.get(name)
            return value is not None and (
                REGISTRY.is_storage(value) or isinstance(value, RDD)
            )

        desugared = desugar(parsed, is_array=is_array, fresh=fresh)
        normalized = normalize(desugared, fresh=fresh)
        plan = plan_query(
            normalized, full_env, self.engine, self.build_context, self.options
        )
        return CompiledQuery(query, parsed, normalized, plan)

    def run(self, query: str, env: Optional[dict[str, Any]] = None, **bindings: Any) -> Any:
        """Compile and execute a query."""
        return self.compile(query, env, **bindings).execute()

    def explain(self, query: str, env: Optional[dict[str, Any]] = None, **bindings: Any) -> str:
        """The compilation report: normalized form, rule, pseudocode."""
        return self.compile(query, env, **bindings).explain()

    def interpret(self, query: str, env: Optional[dict[str, Any]] = None, **bindings: Any) -> Any:
        """Evaluate with the reference interpreter, bypassing the planner.

        Used by differential tests; also handy for queries the planner
        rejects (it is always correct, just not distributed).
        """
        full_env = {**(env or {}), **bindings}
        parsed = parse(query)
        fresh = FreshNames()

        def is_array(name: str) -> bool:
            value = full_env.get(name)
            return value is not None and (
                REGISTRY.is_storage(value) or isinstance(value, RDD)
            )

        expr = normalize(desugar(parsed, is_array=is_array, fresh=fresh), fresh=fresh)
        return Interpreter(full_env, build_context=self.build_context).evaluate(expr)

    # ------------------------------------------------------------------
    # Storage constructors
    # ------------------------------------------------------------------

    def tiled(
        self, array: np.ndarray, num_partitions: Optional[int] = None
    ) -> TiledMatrix:
        """Distribute a local 2-D array as a tiled matrix."""
        return TiledMatrix.from_numpy(
            self.engine, array, self.tile_size, num_partitions
        )

    def tiled_vector(
        self, array: np.ndarray, num_partitions: Optional[int] = None
    ) -> TiledVector:
        """Distribute a local 1-D array as a block vector."""
        return TiledVector.from_numpy(
            self.engine, array, self.tile_size, num_partitions
        )

    def sparse_tiled(self, array: np.ndarray, num_partitions: Optional[int] = None):
        """Distribute a local 2-D array as a CSC-tiled sparse matrix.

        All-zero tiles are dropped; within-tile storage is compressed
        sparse column (the paper's Section 8 extension).
        """
        from ..storage.sparse_tiled import SparseTiledMatrix

        return SparseTiledMatrix.from_numpy(
            self.engine, array, self.tile_size, num_partitions
        )

    def rdd(self, items, num_partitions: Optional[int] = None) -> RDD:
        """Distribute a local collection as an engine RDD."""
        return self.engine.parallelize(items, num_partitions)

    def matrix(self, array: np.ndarray):
        """Distribute a local 2-D array as an operator-friendly handle."""
        from .array import SacMatrix

        return SacMatrix(self, self.tiled(array))

    def vector(self, array: np.ndarray):
        """Distribute a local 1-D array as an operator-friendly handle."""
        from .array import SacVector

        return SacVector(self, self.tiled_vector(array))

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release the engine's executor pool."""
        self.engine.close()

    def __enter__(self) -> "SacSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def metrics_snapshot(self):
        return self.engine.metrics.snapshot()

    def metrics_delta(self, snapshot):
        return self.engine.metrics.delta_since(snapshot)

    def simulated_time(self) -> float:
        return self.engine.simulated_time()
