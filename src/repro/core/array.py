"""Operator-overloaded handles over tiled storages.

:class:`SacMatrix` and :class:`SacVector` give the comprehension-backed
operations of :mod:`repro.core.ops` a NumPy-like surface::

    session = SacSession(tile_size=100)
    A = session.matrix(a)         # SacMatrix
    B = session.matrix(b)
    C = (A @ B + A * 2.0).T       # each operator runs one comprehension
    C.to_numpy()

Every operator compiles and executes a comprehension through the
session — these classes contain no numeric code of their own.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..storage import TiledMatrix, TiledVector
from . import ops
from .session import SacSession

Number = Union[int, float]


class SacMatrix:
    """A distributed matrix handle bound to a session."""

    def __init__(self, session: SacSession, storage: TiledMatrix):
        self.session = session
        self.storage = storage

    # -- shape ------------------------------------------------------------

    @property
    def rows(self) -> int:
        return self.storage.rows

    @property
    def cols(self) -> int:
        return self.storage.cols

    @property
    def shape(self) -> tuple[int, int]:
        return self.storage.rows, self.storage.cols

    # -- operators ----------------------------------------------------------

    def __add__(self, other: Union["SacMatrix", Number]) -> "SacMatrix":
        if isinstance(other, (int, float)):
            return self._wrap(ops.shift(self.session, self.storage, other))
        return self._wrap(ops.add(self.session, self.storage, other.storage))

    __radd__ = __add__

    def __sub__(self, other: "SacMatrix") -> "SacMatrix":
        return self._wrap(ops.subtract(self.session, self.storage, other.storage))

    def __mul__(self, other: Union["SacMatrix", Number]) -> "SacMatrix":
        """Element-wise product (Hadamard); scalars scale."""
        if isinstance(other, (int, float)):
            return self._wrap(ops.scale(self.session, self.storage, other))
        return self._wrap(ops.hadamard(self.session, self.storage, other.storage))

    __rmul__ = __mul__

    def __matmul__(self, other: Union["SacMatrix", "SacVector"]):
        if isinstance(other, SacVector):
            return SacVector(
                self.session, ops.matvec(self.session, self.storage, other.storage)
            )
        return self._wrap(ops.multiply(self.session, self.storage, other.storage))

    def __neg__(self) -> "SacMatrix":
        return self._wrap(ops.scale(self.session, self.storage, -1.0))

    @property
    def T(self) -> "SacMatrix":
        return self._wrap(ops.transpose(self.session, self.storage))

    # -- named operations -----------------------------------------------------

    def matmul_nt(self, other: "SacMatrix") -> "SacMatrix":
        """``self @ other.T`` in one comprehension (no transpose pass)."""
        return self._wrap(ops.multiply_nt(self.session, self.storage, other.storage))

    def matmul_tn(self, other: "SacMatrix") -> "SacMatrix":
        """``self.T @ other`` in one comprehension (no transpose pass)."""
        return self._wrap(ops.multiply_tn(self.session, self.storage, other.storage))

    def row_sums(self) -> "SacVector":
        return SacVector(self.session, ops.row_sums(self.session, self.storage))

    def col_sums(self) -> "SacVector":
        return SacVector(self.session, ops.col_sums(self.session, self.storage))

    def diagonal(self) -> "SacVector":
        return SacVector(self.session, ops.diagonal(self.session, self.storage))

    def trace(self) -> float:
        return ops.trace(self.session, self.storage)

    def sum(self) -> float:
        return ops.total_sum(self.session, self.storage)

    def frobenius_norm(self) -> float:
        return float(np.sqrt(ops.frobenius_norm_sq(self.session, self.storage)))

    def rotate_rows(self) -> "SacMatrix":
        return self._wrap(ops.rotate_rows(self.session, self.storage))

    def slice_rows(self, start: int, stop: int) -> "SacMatrix":
        return self._wrap(ops.slice_rows(self.session, self.storage, start, stop))

    def smooth(self) -> "SacMatrix":
        return self._wrap(ops.smooth(self.session, self.storage))

    def vstack(self, other: "SacMatrix") -> "SacMatrix":
        """Vertical concatenation ``[self; other]``."""
        return self._wrap(ops.vstack(self.session, self.storage, other.storage))

    def hstack(self, other: "SacMatrix") -> "SacMatrix":
        """Horizontal concatenation ``[self, other]``."""
        return self._wrap(ops.hstack(self.session, self.storage, other.storage))

    def cache(self) -> "SacMatrix":
        self.storage.cache()
        return self

    def to_numpy(self) -> np.ndarray:
        return self.storage.to_numpy()

    def _wrap(self, storage: TiledMatrix) -> "SacMatrix":
        return SacMatrix(self.session, storage)

    def __repr__(self) -> str:
        return f"SacMatrix({self.rows}x{self.cols}, tile={self.storage.tile_size})"


class SacVector:
    """A distributed vector handle bound to a session."""

    def __init__(self, session: SacSession, storage: TiledVector):
        self.session = session
        self.storage = storage

    @property
    def length(self) -> int:
        return self.storage.length

    def dot(self, other: "SacVector") -> float:
        return ops.inner(self.session, self.storage, other.storage)

    def outer(self, other: "SacVector") -> SacMatrix:
        return SacMatrix(
            self.session, ops.outer(self.session, self.storage, other.storage)
        )

    def is_sorted(self) -> bool:
        """The paper's ``&&/`` sortedness check."""
        return bool(
            self.session.run(
                "&&/[ v <= w | (i,v) <- V, (j,w) <- V, j == i+1 ]",
                V=self.storage,
            )
        )

    def sum(self) -> float:
        return self.session.run("+/[ v | (i,v) <- V ]", V=self.storage)

    def to_numpy(self) -> np.ndarray:
        return self.storage.to_numpy()

    def __repr__(self) -> str:
        return f"SacVector({self.length}, tile={self.storage.tile_size})"


def matrix(session: SacSession, array: np.ndarray) -> SacMatrix:
    """Distribute a local 2-D array as a :class:`SacMatrix`."""
    return SacMatrix(session, session.tiled(array))


def vector(session: SacSession, array: np.ndarray) -> SacVector:
    """Distribute a local 1-D array as a :class:`SacVector`."""
    return SacVector(session, session.tiled_vector(array))
