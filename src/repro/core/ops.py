"""Linear-algebra operations as array comprehensions.

Every function here is a thin wrapper that feeds a DSL comprehension to
a :class:`~repro.core.session.SacSession` — nothing is hand-implemented
per operation.  This is the paper's point: the operations below are
*queries*, and the generic translation rules compile each to the
appropriate distributed plan (noted per function).

All functions take tiled storages and return tiled storages; use
``.to_numpy()`` to materialize results locally.

Matrix arguments may also be :class:`~repro.storage.SparseTiledMatrix`
instances: the planner accepts them wherever it accepts dense tiled
matrices (paper §8), running annihilating maps (``transpose``,
``scale``) and ``+``-aggregations (``multiply``, ``row_sums``) on the
tiled rules and everything else on the coordinate path.  Density
statistics recorded at construction propagate through these wrappers
onto their (dense tiled) results — exactly through ``transpose``/
``scale``, union-bounded through ``add``/``subtract``, product-bounded
through ``hadamard``, and contraction-estimated through the multiplies
(see :mod:`repro.storage.stats`) — so chained operations keep pricing
plans sparse-aware without ever running a count action.
"""

from __future__ import annotations

from typing import Optional, Union

from ..storage import SparseTiledMatrix, TiledMatrix, TiledVector
from .session import SacSession

Number = Union[int, float]
#: Any matrix the tiled planner accepts; sparse inputs yield dense tiled
#: results carrying propagated density statistics.
Matrix = Union[TiledMatrix, SparseTiledMatrix]


def add(session: SacSession, a: Matrix, b: Matrix) -> TiledMatrix:
    """Matrix addition — Query (8); compiles to preserve-tiling (5.1)."""
    _check_same_shape(a, b)
    return session.run(
        "tiled(n, m)[ ((i,j), x + y) | ((i,j),x) <- A, ((ii,jj),y) <- B,"
        " ii == i, jj == j ]",
        A=a, B=b, n=a.rows, m=a.cols,
    )


def subtract(session: SacSession, a: Matrix, b: Matrix) -> TiledMatrix:
    """Cell-wise subtraction; compiles to preserve-tiling (5.1)."""
    _check_same_shape(a, b)
    return session.run(
        "tiled(n, m)[ ((i,j), x - y) | ((i,j),x) <- A, ((ii,jj),y) <- B,"
        " ii == i, jj == j ]",
        A=a, B=b, n=a.rows, m=a.cols,
    )


def hadamard(session: SacSession, a: Matrix, b: Matrix) -> TiledMatrix:
    """Element-wise product; compiles to preserve-tiling (5.1)."""
    _check_same_shape(a, b)
    return session.run(
        "tiled(n, m)[ ((i,j), x * y) | ((i,j),x) <- A, ((ii,jj),y) <- B,"
        " ii == i, jj == j ]",
        A=a, B=b, n=a.rows, m=a.cols,
    )


def scale(session: SacSession, a: Matrix, factor: Number) -> TiledMatrix:
    """Scalar multiple; compiles to preserve-tiling (5.1)."""
    return session.run(
        "tiled(n, m)[ ((i,j), c * x) | ((i,j),x) <- A ]",
        A=a, n=a.rows, m=a.cols, c=float(factor),
    )


def shift(session: SacSession, a: Matrix, offset: Number) -> TiledMatrix:
    """Add a constant to every cell; preserve-tiling (5.1)."""
    return session.run(
        "tiled(n, m)[ ((i,j), x + c) | ((i,j),x) <- A ]",
        A=a, n=a.rows, m=a.cols, c=float(offset),
    )


def transpose(session: SacSession, a: Matrix) -> TiledMatrix:
    """Matrix transpose; preserve-tiling (tile grid transposes too)."""
    return session.run(
        "tiled(m, n)[ ((j,i), v) | ((i,j),v) <- A ]",
        A=a, n=a.rows, m=a.cols,
    )


def multiply(
    session: SacSession,
    a: Matrix,
    b: Matrix,
) -> TiledMatrix:
    """Matrix multiplication — Query (9).

    Compiles to the group-by-join / SUMMA plan (5.4) when the session's
    planner options allow it, otherwise to the tile join + reduceByKey
    plan (5.3).  The ``PlannerOptions(group_by_join=False)`` session
    reproduces the paper's slower "SAC" variant from Figure 4.B.
    """
    if a.cols != b.rows:
        raise ValueError(
            f"inner dimensions disagree: {a.rows}x{a.cols} @ {b.rows}x{b.cols}"
        )
    return session.run(
        "tiled(n, m)[ ((i,j), +/v) | ((i,k),x) <- A, ((kk,j),y) <- B,"
        " kk == k, let v = x*y, group by (i,j) ]",
        A=a, B=b, n=a.rows, m=b.cols,
    )


def multiply_nt(session: SacSession, a: Matrix, b: Matrix) -> TiledMatrix:
    """``A @ B.T`` without materializing the transpose (both join on
    their column index); group-by-join (5.4)."""
    if a.cols != b.cols:
        raise ValueError(
            f"cannot multiply {a.rows}x{a.cols} by transpose of {b.rows}x{b.cols}"
        )
    return session.run(
        "tiled(n, m)[ ((i,j), +/v) | ((i,k),x) <- A, ((j,kk),y) <- B,"
        " kk == k, let v = x*y, group by (i,j) ]",
        A=a, B=b, n=a.rows, m=b.rows,
    )


def multiply_tn(session: SacSession, a: Matrix, b: Matrix) -> TiledMatrix:
    """``A.T @ B`` without materializing the transpose; group-by-join."""
    if a.rows != b.rows:
        raise ValueError(
            f"cannot multiply transpose of {a.rows}x{a.cols} by {b.rows}x{b.cols}"
        )
    return session.run(
        "tiled(n, m)[ ((j,k), +/v) | ((i,j),x) <- A, ((ii,k),y) <- B,"
        " ii == i, let v = x*y, group by (j,k) ]",
        A=a, B=b, n=a.cols, m=b.cols,
    )


def row_sums(session: SacSession, a: Matrix) -> TiledVector:
    """``V_i = Σ_j M_ij`` — Figure 1; tiled reduce (5.3)."""
    return session.run(
        "tiled_vector(n)[ (i, +/m) | ((i,j),m) <- A, group by i ]",
        A=a, n=a.rows,
    )


def col_sums(session: SacSession, a: Matrix) -> TiledVector:
    """Column sums; tiled reduce (5.3)."""
    return session.run(
        "tiled_vector(m)[ (j, +/v) | ((i,j),v) <- A, group by j ]",
        A=a, m=a.cols,
    )


def row_max(session: SacSession, a: Matrix) -> TiledVector:
    """Row-wise maxima; tiled reduce with the ``max`` monoid."""
    return session.run(
        "tiled_vector(n)[ (i, max/m) | ((i,j),m) <- A, group by i ]",
        A=a, n=a.rows,
    )


def total_sum(session: SacSession, a: Matrix) -> float:
    """Sum of all cells; distributed total aggregation."""
    return session.run("+/[ v | ((i,j),v) <- A ]", A=a)


def frobenius_norm_sq(session: SacSession, a: Matrix) -> float:
    """Squared Frobenius norm ``Σ v²``; distributed total aggregation."""
    return session.run("+/[ v * v | ((i,j),v) <- A ]", A=a)


def diagonal(session: SacSession, a: Matrix) -> TiledVector:
    """Main diagonal — the paper's 5.1 example ``i == j``."""
    return session.run(
        "tiled_vector(n)[ (i, v) | ((i,j),v) <- A, i == j ]",
        A=a, n=min(a.rows, a.cols),
    )


def trace(session: SacSession, a: Matrix) -> float:
    """Sum of the diagonal; distributed total aggregation."""
    return session.run("+/[ v | ((i,j),v) <- A, i == j ]", A=a)


def rotate_rows(session: SacSession, a: Matrix) -> TiledMatrix:
    """Cyclic row rotation — the paper's 5.2 example; tiled shuffle."""
    return session.run(
        "tiled(n, m)[ (((i+1) % n, j), v) | ((i,j),v) <- A ]",
        A=a, n=a.rows, m=a.cols,
    )


def slice_rows(
    session: SacSession, a: Matrix, start: int, stop: int
) -> TiledMatrix:
    """Rows ``start <= i < stop`` re-indexed from zero; tiled shuffle."""
    if not 0 <= start < stop <= a.rows:
        raise ValueError(f"bad row slice [{start}, {stop}) for {a.rows} rows")
    return session.run(
        "tiled(n, m)[ ((i - lo, j), v) | ((i,j),v) <- A, i >= lo, i < hi ]",
        A=a, n=stop - start, m=a.cols, lo=start, hi=stop,
    )


def _retile_offset(
    session: SacSession,
    matrix: Matrix,
    rows: int,
    cols: int,
    row_offset: int,
    col_offset: int,
) -> TiledMatrix:
    """Re-tile ``matrix`` into the geometry of a ``rows × cols`` result,
    shifted by an offset.  Always uses the tiled-shuffle plan (the offset
    keeps the key a computed expression), so tiles at the seams are
    zero-padded to the *result's* tile shapes."""
    return session.run(
        "tiled(n, m)[ ((i + ro, j + co), v) | ((i,j),v) <- X ]",
        X=matrix, n=rows, m=cols, ro=row_offset, co=col_offset,
    )


def _merge_tiles(a: Matrix, b: Matrix) -> TiledMatrix:
    """Union two same-geometry tilings, adding tiles that share a seam."""
    merged = a.tiles.union(b.tiles).reduce_by_key(lambda x, y: x + y)
    return TiledMatrix(a.rows, a.cols, a.tile_size, merged)


def vstack(session: SacSession, a: Matrix, b: Matrix) -> TiledMatrix:
    """Vertical concatenation ``[A; B]`` (the paper's array concatenation).

    A comprehension is a join, not a union, so concatenation runs as two
    compiled re-tiling queries into the result geometry whose tile RDDs
    are merged (tiles straddling the seam add element-wise, each side
    zero-filled outside its region).
    """
    if a.cols != b.cols:
        raise ValueError(f"column mismatch: {a.cols} vs {b.cols}")
    total = a.rows + b.rows
    top = _retile_offset(session, a, total, a.cols, 0, 0)
    bottom = _retile_offset(session, b, total, a.cols, a.rows, 0)
    return _merge_tiles(top, bottom)


def hstack(session: SacSession, a: Matrix, b: Matrix) -> TiledMatrix:
    """Horizontal concatenation ``[A, B]``."""
    if a.rows != b.rows:
        raise ValueError(f"row mismatch: {a.rows} vs {b.rows}")
    total = a.cols + b.cols
    left = _retile_offset(session, a, a.rows, total, 0, 0)
    right = _retile_offset(session, b, a.rows, total, 0, a.cols)
    return _merge_tiles(left, right)


def outer(session: SacSession, u: TiledVector, v: TiledVector) -> TiledMatrix:
    """Outer product of two vectors; preserve-tiling with replication."""
    return session.run(
        "tiled(n, m)[ ((i,j), x * y) | (i,x) <- U, (j,y) <- V ]",
        U=u, V=v, n=u.length, m=v.length,
    )


def inner(session: SacSession, u: TiledVector, v: TiledVector) -> float:
    """Inner product of two vectors; distributed total aggregation."""
    if u.length != v.length:
        raise ValueError(f"length mismatch: {u.length} vs {v.length}")
    return session.run(
        "+/[ x * y | (i,x) <- U, (j,y) <- V, j == i ]", U=u, V=v
    )


def matvec(session: SacSession, a: Matrix, x: TiledVector) -> TiledVector:
    """Matrix-vector product; tiled reduce (5.3)."""
    if a.cols != x.length:
        raise ValueError(f"dimension mismatch: {a.cols} vs {x.length}")
    return session.run(
        "tiled_vector(n)[ (i, +/p) | ((i,j),m) <- A, (jj,v) <- X, jj == j,"
        " let p = m*v, group by i ]",
        A=a, X=x, n=a.rows,
    )


def smooth(session: SacSession, a: Matrix) -> TiledMatrix:
    """3×3 neighbourhood average — the paper's Section 3 example.

    The stencil's group key is range-generated, so this runs on the
    fallback paths (correct, not block-optimized), exactly the kind of
    ad-hoc query the library approach cannot express at all.
    """
    return session.run(
        "tiled(n, m)[ ((ii,jj), (+/v) / count/v) | ((i,j),v) <- A,"
        " ii <- (i-1) to (i+1), jj <- (j-1) to (j+1),"
        " ii >= 0, ii < n, jj >= 0, jj < m, group by (ii,jj) ]",
        A=a, n=a.rows, m=a.cols,
    )


def _check_same_shape(a: Matrix, b: Matrix) -> None:
    if (a.rows, a.cols) != (b.rows, b.cols):
        raise ValueError(
            f"shape mismatch: {a.rows}x{a.cols} vs {b.rows}x{b.cols}"
        )
