"""``python -m repro``: the command-line query runner."""

import sys

from .cli import main

sys.exit(main())
