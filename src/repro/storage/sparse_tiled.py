"""Sparse tiled matrices: CSC tiles in a distributed grid (paper §8).

The paper's future work proposes "tiled arrays where each tile is stored
in the compressed sparse column format" and claims the same layered
approach covers them.  This module delivers that claim: a
:class:`SparseTiledMatrix` is structurally a :class:`TiledMatrix` whose
tiles are :class:`~repro.storage.csc.CscMatrix` blocks, with sparsity
exploited at *both* levels:

* **block level** — all-zero tiles are simply absent from the RDD, so
  joins, reductions and replication skip them entirely;
* **tile level** — each present tile stores only its non-zeros.

The translation rules are unchanged (the paper's point): the planner
accepts these storages wherever it accepts dense tiled matrices, and the
NumPy kernels receive each tile densified on access.  What block
sparsity buys is fewer tiles shuffled and fewer per-tile kernels run;
what it costs is the densify at the kernel boundary — the tradeoff
``benchmarks`` can explore and ``tests/test_sparse_tiled.py`` validates.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Iterator, Optional

import numpy as np

from ..comprehension.errors import SacTypeError
from ..engine import EngineContext, RDD
from . import stats as density_stats
from .csc import CscMatrix
from .registry import REGISTRY, BuildContext
from .stats import DensityStats


class SparseTiledMatrix:
    """A matrix partitioned into a distributed grid of CSC tiles.

    Only tiles containing at least one non-zero are stored.  Tile
    coordinates and shapes follow :class:`~repro.storage.tiled.TiledMatrix`
    exactly (ragged edges included), so the two interoperate in joins.

    ``recorded_nnz`` / ``recorded_tiles`` are the density statistics the
    cost model plans with: both constructors count them for free while
    cutting tiles, so :meth:`density` and :meth:`block_density` never
    have to run a count *action* at planning time.  A matrix wrapped
    around a raw RDD (no recorded statistics) prices at the dense upper
    bound until :meth:`density` is called with ``exact=True``.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        tile_size: int,
        tiles: RDD,
        recorded_nnz: Optional[int] = None,
        recorded_tiles: Optional[int] = None,
    ):
        if rows <= 0 or cols <= 0:
            raise SacTypeError(f"matrix dimensions must be positive: {rows}x{cols}")
        if tile_size <= 0:
            raise SacTypeError(f"tile size must be positive: {tile_size}")
        self.rows = rows
        self.cols = cols
        self.tile_size = tile_size
        self.tiles = tiles
        self._recorded_nnz = recorded_nnz
        self._recorded_tiles = recorded_tiles

    # -- shape helpers -----------------------------------------------------

    @property
    def grid_rows(self) -> int:
        return math.ceil(self.rows / self.tile_size)

    @property
    def grid_cols(self) -> int:
        return math.ceil(self.cols / self.tile_size)

    def tile_shape(self, block_row: int, block_col: int) -> tuple[int, int]:
        height = min(self.tile_size, self.rows - block_row * self.tile_size)
        width = min(self.cols - block_col * self.tile_size, self.tile_size)
        return height, width

    # -- construction --------------------------------------------------------

    @classmethod
    def from_numpy(
        cls,
        engine: EngineContext,
        array: np.ndarray,
        tile_size: int,
        num_partitions: Optional[int] = None,
    ) -> "SparseTiledMatrix":
        """Cut a local array into CSC tiles, dropping all-zero tiles."""
        array = np.asarray(array, dtype=np.float64)
        if array.ndim != 2:
            raise SacTypeError(f"need a 2-D array, got shape {array.shape}")
        rows, cols = array.shape
        tiles = []
        for bi in range(math.ceil(rows / tile_size)):
            for bj in range(math.ceil(cols / tile_size)):
                block = array[
                    bi * tile_size : (bi + 1) * tile_size,
                    bj * tile_size : (bj + 1) * tile_size,
                ]
                if np.any(block):
                    tiles.append(((bi, bj), CscMatrix.from_numpy(block)))
        rdd = engine.parallelize(tiles, num_partitions or engine.default_parallelism)
        return cls(
            rows, cols, tile_size, rdd,
            recorded_nnz=sum(tile.nnz for _, tile in tiles),
            recorded_tiles=len(tiles),
        )

    @classmethod
    def from_items(
        cls,
        engine: EngineContext,
        rows: int,
        cols: int,
        tile_size: int,
        items: Iterable[tuple[tuple[int, int], Any]],
        num_partitions: Optional[int] = None,
    ) -> "SparseTiledMatrix":
        """Group an association list by tile coordinate into CSC tiles."""
        grid: dict[tuple[int, int], list[tuple[tuple[int, int], Any]]] = {}
        for (i, j), value in items:
            if not (0 <= i < rows and 0 <= j < cols) or value == 0:
                continue
            coord = (i // tile_size, j // tile_size)
            grid.setdefault(coord, []).append(
                ((i % tile_size, j % tile_size), value)
            )
        helper = cls(rows, cols, tile_size, engine.empty_rdd())
        tiles = [
            (coord, CscMatrix.from_items(*helper.tile_shape(*coord), entries))
            for coord, entries in sorted(grid.items())
        ]
        tiles = [(coord, tile) for coord, tile in tiles if tile.nnz]
        rdd = engine.parallelize(tiles, num_partitions or engine.default_parallelism)
        return cls(
            rows, cols, tile_size, rdd,
            recorded_nnz=sum(tile.nnz for _, tile in tiles),
            recorded_tiles=len(tiles),
        )

    # -- materialization -----------------------------------------------------

    def nnz(self) -> int:
        """Total stored non-zeros across all tiles (a count action).

        The result is memoized into the recorded statistic, so a later
        :meth:`density` call reflects it."""
        self._recorded_nnz = self.tiles.map(lambda kv: kv[1].nnz).sum()
        return self._recorded_nnz

    def num_tiles(self) -> int:
        """Number of non-empty tiles (≤ grid_rows · grid_cols); an action."""
        self._recorded_tiles = self.tiles.count()
        return self._recorded_tiles

    def density(self, exact: bool = False) -> float:
        """Element-level fill ratio, from the recorded statistic.

        Never triggers a count action unless ``exact=True`` (or no
        statistic was recorded *and* ``exact`` is requested): the
        planner calls this at compile time, where launching a job to
        cost a plan would defeat the purpose.  With no recorded
        statistic the dense upper bound ``1.0`` is returned — safe for
        costing, pessimistic for display; ask for ``exact=True`` when
        the true value matters.
        """
        if exact:
            return self.nnz() / (self.rows * self.cols)
        if self._recorded_nnz is None:
            return 1.0
        return self._recorded_nnz / (self.rows * self.cols)

    def block_density(self, exact: bool = False) -> float:
        """Fraction of grid tiles stored (the statistic that scales
        shuffle volume: absent tiles never join or replicate)."""
        grid = self.grid_rows * self.grid_cols
        if exact:
            return self.num_tiles() / grid
        if self._recorded_tiles is None:
            return 1.0
        return self._recorded_tiles / grid

    @property
    def stats(self) -> DensityStats:
        """Recorded statistics in the planner's format (dense when unknown)."""
        if self._recorded_nnz is None and self._recorded_tiles is None:
            return density_stats.DENSE
        return DensityStats(self.density(), self.block_density())

    def to_numpy(self) -> np.ndarray:
        out = np.zeros((self.rows, self.cols))
        n = self.tile_size
        for (bi, bj), tile in self.tiles.collect():
            out[bi * n : bi * n + tile.rows, bj * n : bj * n + tile.cols] = (
                tile.to_numpy()
            )
        return out

    def to_dense_tiled(self):
        """Convert to a dense :class:`TiledMatrix` (materializes zeros
        inside stored tiles; absent tiles stay absent, and the recorded
        density statistics carry over)."""
        from .tiled import TiledMatrix

        dense = self.tiles.map_values(lambda tile: tile.to_numpy())
        out = TiledMatrix(self.rows, self.cols, self.tile_size, dense)
        out.stats = self.stats
        return out

    def sparsify(self) -> Iterator[tuple[tuple[int, int], Any]]:
        """Only stored non-zeros exist in the abstract array."""
        n = self.tile_size
        for (bi, bj), tile in self.tiles.collect():
            for (i, j), value in tile.sparsify():
                yield (bi * n + i, bj * n + j), value

    def cache(self) -> "SparseTiledMatrix":
        self.tiles.cache()
        return self

    def materialize(self) -> "SparseTiledMatrix":
        self.tiles.cache()
        self.tiles.count()
        return self

    def __repr__(self) -> str:
        return (
            f"SparseTiledMatrix({self.rows}x{self.cols}, tile={self.tile_size})"
        )


def _build_sparse_tiled(ctx: BuildContext, args: tuple, items) -> SparseTiledMatrix:
    if len(args) != 2:
        raise SacTypeError(
            "sparse_tiled(n,m) builder takes two dimension arguments"
        )
    if ctx.engine is None:
        raise SacTypeError("builder 'sparse_tiled' needs an engine context")
    return SparseTiledMatrix.from_items(
        ctx.engine, int(args[0]), int(args[1]), ctx.tile_size, items,
        num_partitions=ctx.num_partitions,
    )


REGISTRY.register_sparsifier(SparseTiledMatrix, lambda m: m.sparsify())
REGISTRY.register_builder("sparse_tiled", _build_sparse_tiled)
