"""Compressed Sparse Column storage.

The column-major sibling of :mod:`repro.storage.csr`.  The paper's
future-work section (Section 8) names "tiled arrays where each tile is
stored in the compressed sparse column format" as the natural next
storage; :mod:`repro.storage.sparse_tiled` builds exactly that on top of
this class.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

import numpy as np

from ..comprehension.errors import SacTypeError
from .registry import REGISTRY, BuildContext


class CscMatrix:
    """CSC matrix: ``indptr`` (m+1 columns), ``indices`` (rows), ``data``."""

    def __init__(
        self,
        rows: int,
        cols: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
    ):
        if len(indptr) != cols + 1:
            raise SacTypeError(
                f"indptr length {len(indptr)} does not match cols {cols}"
            )
        if len(indices) != len(data):
            raise SacTypeError("indices and data lengths differ")
        self.rows = rows
        self.cols = cols
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data)

    @classmethod
    def from_items(
        cls, rows: int, cols: int, items: Iterable[tuple[tuple[int, int], Any]]
    ) -> "CscMatrix":
        """Build from an association list (clipping, dropping zeros)."""
        per_col: list[list[tuple[int, Any]]] = [[] for _ in range(cols)]
        for (i, j), value in items:
            if 0 <= i < rows and 0 <= j < cols and value != 0:
                per_col[j].append((i, value))
        indptr = np.zeros(cols + 1, dtype=np.int64)
        indices: list[int] = []
        data: list[Any] = []
        for j, column in enumerate(per_col):
            column.sort()
            for i, value in column:
                indices.append(i)
                data.append(value)
            indptr[j + 1] = len(indices)
        return cls(
            rows, cols, indptr, np.array(indices, dtype=np.int64), np.array(data)
        )

    @classmethod
    def from_numpy(cls, array: np.ndarray) -> "CscMatrix":
        array = np.asarray(array)
        if array.ndim != 2:
            raise SacTypeError(f"need a 2-D array, got shape {array.shape}")
        rows, cols = array.shape
        nz_rows, nz_cols = np.nonzero(array)
        return cls.from_items(
            rows,
            cols,
            (
                ((int(i), int(j)), array[i, j].item())
                for i, j in zip(nz_rows, nz_cols)
            ),
        )

    @property
    def nnz(self) -> int:
        return int(self.indptr[-1])

    def density(self) -> float:
        total = self.rows * self.cols
        return self.nnz / total if total else 0.0

    def column(self, j: int) -> tuple[np.ndarray, np.ndarray]:
        """Row indices and values of column ``j`` (zero-copy views)."""
        start, end = self.indptr[j], self.indptr[j + 1]
        return self.indices[start:end], self.data[start:end]

    def get(self, i: int, j: int) -> Any:
        rows, values = self.column(j)
        pos = np.searchsorted(rows, i)
        if pos < len(rows) and rows[pos] == i:
            return values[pos].item()
        return 0

    def sparsify(self) -> Iterator[tuple[tuple[int, int], Any]]:
        """Walk columns in order, yielding ``((i, j), value)`` per entry."""
        for j in range(self.cols):
            rows, values = self.column(j)
            for i, value in zip(rows, values):
                yield (int(i), j), value.item()

    def to_numpy(self) -> np.ndarray:
        out = np.zeros((self.rows, self.cols))
        for j in range(self.cols):
            rows, values = self.column(j)
            out[rows, j] = values
        return out

    def transpose_to_csr_layout(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The same entries laid out row-major (useful for kernels)."""
        order = np.argsort(
            np.repeat(np.arange(self.cols), np.diff(self.indptr))
            + self.indices * self.cols
        )
        cols = np.repeat(np.arange(self.cols), np.diff(self.indptr))[order]
        rows = self.indices[order]
        return rows, cols, self.data[order]

    def __repr__(self) -> str:
        return f"CscMatrix({self.rows}x{self.cols}, nnz={self.nnz})"


def _build_csc(ctx: BuildContext, args: tuple, items) -> CscMatrix:
    if len(args) != 2:
        raise SacTypeError("csc(n,m) builder takes two dimension arguments")
    return CscMatrix.from_items(int(args[0]), int(args[1]), items)


REGISTRY.register_sparsifier(CscMatrix, lambda m: m.sparsify())
REGISTRY.register_builder("csc", _build_csc)
