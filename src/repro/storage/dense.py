"""Dense in-memory storages: vectors and row-major matrices (Section 2).

``DenseMatrix`` mirrors the paper's running example: a matrix stored as
``(n, m, V)`` with ``V`` a flat vector holding the elements in row-major
order.  We keep the flat buffer as a NumPy array and expose both the flat
view (``flat``) and a 2-D view (``data``) — the 2-D view is the same
buffer, so tile kernels can use BLAS-backed NumPy ops without copying.

Builders clip out-of-range indices exactly like the paper's ``matrix``
builder (whose comprehension guards ``i≥0, i<n, j≥0, j<m``).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

import numpy as np

from ..comprehension.errors import SacTypeError
from .registry import REGISTRY, BuildContext


class DenseVector:
    """A dense vector of fixed length backed by a NumPy array."""

    def __init__(self, data: np.ndarray):
        data = np.asarray(data)
        if data.ndim != 1:
            raise SacTypeError(f"DenseVector needs 1-D data, got shape {data.shape}")
        self.data = data

    @classmethod
    def zeros(cls, length: int, dtype=np.float64) -> "DenseVector":
        return cls(np.zeros(length, dtype=dtype))

    @classmethod
    def from_items(
        cls, length: int, items: Iterable[tuple[int, Any]], dtype=np.float64
    ) -> "DenseVector":
        """Build from an association list, clipping out-of-range indices."""
        data = np.zeros(length, dtype=dtype)
        for index, value in items:
            if 0 <= index < length:
                data[index] = value
        return cls(data)

    @property
    def length(self) -> int:
        return int(self.data.shape[0])

    def sparsify(self) -> Iterator[tuple[int, Any]]:
        """``[ (i, V(i)) | i <- 0 until V.length ]``."""
        for index in range(self.length):
            yield index, self.data[index].item()

    def get(self, index: int) -> Any:
        return self.data[index].item()

    def to_numpy(self) -> np.ndarray:
        return self.data

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DenseVector) and np.array_equal(self.data, other.data)

    def __repr__(self) -> str:
        return f"DenseVector(length={self.length})"


class DenseMatrix:
    """A dense n×m matrix stored row-major in one flat buffer."""

    def __init__(self, rows: int, cols: int, flat: np.ndarray):
        flat = np.asarray(flat)
        if flat.size != rows * cols:
            raise SacTypeError(
                f"flat buffer has {flat.size} elements, expected {rows * cols}"
            )
        self.rows = rows
        self.cols = cols
        self.flat = flat.reshape(-1)

    @classmethod
    def zeros(cls, rows: int, cols: int, dtype=np.float64) -> "DenseMatrix":
        return cls(rows, cols, np.zeros(rows * cols, dtype=dtype))

    @classmethod
    def from_numpy(cls, array: np.ndarray) -> "DenseMatrix":
        array = np.asarray(array)
        if array.ndim != 2:
            raise SacTypeError(f"need a 2-D array, got shape {array.shape}")
        return cls(array.shape[0], array.shape[1], np.ascontiguousarray(array).ravel())

    @classmethod
    def from_items(
        cls,
        rows: int,
        cols: int,
        items: Iterable[tuple[tuple[int, int], Any]],
        dtype=np.float64,
    ) -> "DenseMatrix":
        """The paper's ``matrix(n,m)(L)`` builder: clip and place."""
        data = np.zeros(rows * cols, dtype=dtype)
        for (i, j), value in items:
            if 0 <= i < rows and 0 <= j < cols:
                data[i * cols + j] = value
        return cls(rows, cols, data)

    @property
    def data(self) -> np.ndarray:
        """2-D view sharing the flat buffer."""
        return self.flat.reshape(self.rows, self.cols)

    def sparsify(self) -> Iterator[tuple[tuple[int, int], Any]]:
        """``[ ((i,j), A(i*m+j)) | i <- 0 until n, j <- 0 until m ]``."""
        for i in range(self.rows):
            base = i * self.cols
            for j in range(self.cols):
                yield (i, j), self.flat[base + j].item()

    def get(self, i: int, j: int) -> Any:
        return self.flat[i * self.cols + j].item()

    def to_numpy(self) -> np.ndarray:
        return self.data

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, DenseMatrix)
            and self.rows == other.rows
            and self.cols == other.cols
            and np.array_equal(self.flat, other.flat)
        )

    def __repr__(self) -> str:
        return f"DenseMatrix({self.rows}x{self.cols})"


# ----------------------------------------------------------------------
# Registration
# ----------------------------------------------------------------------


def _sparsify_numpy(value: np.ndarray) -> Iterator[tuple[Any, Any]]:
    """Raw NumPy arrays act as dense storages: 1-D keyed by ``i``,
    2-D keyed by ``(i, j)``."""
    if value.ndim == 1:
        for i in range(value.shape[0]):
            yield i, value[i].item()
    elif value.ndim == 2:
        for i in range(value.shape[0]):
            for j in range(value.shape[1]):
                yield (i, j), value[i, j].item()
    else:
        raise SacTypeError(f"cannot sparsify a {value.ndim}-D ndarray")


def _build_vector(ctx: BuildContext, args: tuple, items) -> DenseVector:
    if len(args) != 1:
        raise SacTypeError("vector(n) builder takes one dimension argument")
    return DenseVector.from_items(int(args[0]), items)


def _build_array(ctx: BuildContext, args: tuple, items) -> np.ndarray:
    """``array(n)(L)``: a raw flat buffer (used for tile construction)."""
    if len(args) != 1:
        raise SacTypeError("array(n) builder takes one size argument")
    return DenseVector.from_items(int(args[0]), items).data


def _build_matrix(ctx: BuildContext, args: tuple, items) -> DenseMatrix:
    if len(args) != 2:
        raise SacTypeError("matrix(n,m) builder takes two dimension arguments")
    return DenseMatrix.from_items(int(args[0]), int(args[1]), items)


def _build_list(ctx: BuildContext, args: tuple, items) -> list:
    """``list(L)``: the identity builder (association list as-is)."""
    return list(items)


REGISTRY.register_sparsifier(DenseVector, lambda v: v.sparsify())
REGISTRY.register_sparsifier(DenseMatrix, lambda m: m.sparsify())
REGISTRY.register_sparsifier(np.ndarray, _sparsify_numpy)
REGISTRY.register_builder("vector", _build_vector)
REGISTRY.register_builder("array", _build_array)
REGISTRY.register_builder("matrix", _build_matrix)
REGISTRY.register_builder("list", _build_list)
