"""Pluggable object stores backing the BlockManager's spill tier.

numpywren's "Infinite RAM" design treats S3 as the memory abstraction:
compute is decoupled from storage, and working sets larger than RAM
simply live behind a put/get byte-blob API.  This module is that API for
the engine — S3-shaped (opaque string keys, whole-object put/get/delete,
prefix listing) so a real remote backend can slot in later, with a
local-disk backend now.

The stores deal in raw ``bytes``; serialization policy (pickle, layout,
compression) belongs to the caller (the
:class:`~repro.engine.block_manager.BlockManager`).  ``LocalDiskStore``
writes atomically (temp file + rename) so a reader never observes a
half-written object, and enforces an optional capacity so a full spill
volume fails loudly instead of silently corrupting the tier.

This module intentionally imports nothing from the rest of the package:
the engine loads it lazily to keep the ``storage`` ↔ ``engine`` import
graph acyclic.
"""

from __future__ import annotations

import os
import tempfile
import threading
from typing import Iterator, Optional


class ObjectStoreError(Exception):
    """Base class for spill-store failures."""


class SpillStoreFullError(ObjectStoreError):
    """The spill volume has no room for another object.

    Raised on a capacity breach (or ``ENOSPC`` from the filesystem).  The
    message names the store, the object, and the remedies, because this
    surfaces mid-job to users who never asked for a spill tier directly.
    """


class ObjectNotFoundError(ObjectStoreError):
    """``get``/``size`` was asked for a key the store does not hold."""


class ObjectStore:
    """S3-shaped key/value blob store interface.

    Keys are opaque ``/``-separated strings (``spill/cache/12/3``).  All
    methods are thread-safe in every provided implementation; concurrent
    ``put`` to the same key keeps one complete object.
    """

    def put(self, key: str, data: bytes) -> None:
        """Store ``data`` under ``key``, replacing any existing object."""
        raise NotImplementedError

    def get(self, key: str) -> bytes:
        """The object's bytes; raises :class:`ObjectNotFoundError`."""
        raise NotImplementedError

    def delete(self, key: str) -> bool:
        """Remove ``key`` if present; returns whether it existed."""
        raise NotImplementedError

    def exists(self, key: str) -> bool:
        raise NotImplementedError

    def size(self, key: str) -> int:
        """Stored size in bytes; raises :class:`ObjectNotFoundError`."""
        raise NotImplementedError

    def list(self, prefix: str = "") -> Iterator[str]:
        """All keys starting with ``prefix`` (no order guaranteed)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; the store may not be used afterwards."""


class InMemoryStore(ObjectStore):
    """Dict-backed store for tests — same semantics, no filesystem."""

    def __init__(self, capacity_bytes: Optional[int] = None):
        self._objects: dict[str, bytes] = {}
        self._capacity = capacity_bytes
        self._bytes = 0
        self._lock = threading.Lock()

    def put(self, key: str, data: bytes) -> None:
        with self._lock:
            projected = self._bytes - len(self._objects.get(key, b"")) + len(data)
            if self._capacity is not None and projected > self._capacity:
                raise SpillStoreFullError(
                    f"in-memory spill store is full: writing {len(data)} bytes "
                    f"to {key!r} would exceed the {self._capacity}-byte "
                    f"capacity (currently {self._bytes} bytes)"
                )
            self._bytes = projected
            self._objects[key] = data

    def get(self, key: str) -> bytes:
        with self._lock:
            try:
                return self._objects[key]
            except KeyError:
                raise ObjectNotFoundError(key) from None

    def delete(self, key: str) -> bool:
        with self._lock:
            data = self._objects.pop(key, None)
            if data is None:
                return False
            self._bytes -= len(data)
            return True

    def exists(self, key: str) -> bool:
        with self._lock:
            return key in self._objects

    def size(self, key: str) -> int:
        with self._lock:
            try:
                return len(self._objects[key])
            except KeyError:
                raise ObjectNotFoundError(key) from None

    def list(self, prefix: str = "") -> Iterator[str]:
        with self._lock:
            keys = [key for key in self._objects if key.startswith(prefix)]
        return iter(keys)


class LocalDiskStore(ObjectStore):
    """Object store over a local directory (one file per key).

    Keys map to paths under ``root`` (each ``/`` segment a directory).
    Writes go through a temp file in the same directory and an atomic
    ``os.replace``, so concurrent readers and a crash mid-write both see
    either the old complete object or the new one — never a torn file.

    Args:
        root: directory holding the objects; created if missing.  When
            ``None``, a private temp directory is created and removed on
            :meth:`close`.
        capacity_bytes: optional cap on total stored bytes; a ``put``
            that would exceed it raises :class:`SpillStoreFullError`.
    """

    def __init__(
        self,
        root: Optional[str] = None,
        capacity_bytes: Optional[int] = None,
    ):
        if root is None:
            self._tmpdir: Optional[tempfile.TemporaryDirectory] = (
                tempfile.TemporaryDirectory(prefix="repro-spill-")
            )
            root = self._tmpdir.name
        else:
            self._tmpdir = None
            os.makedirs(root, exist_ok=True)
        self.root = root
        self._capacity = capacity_bytes
        #: Tracked sizes of live objects; also the source of truth for
        #: the capacity check, so external files in ``root`` don't count.
        self._sizes: dict[str, int] = {}
        self._bytes = 0
        self._lock = threading.Lock()

    def _path(self, key: str) -> str:
        parts = [part for part in key.split("/") if part not in ("", ".", "..")]
        if not parts:
            raise ValueError(f"invalid object key {key!r}")
        return os.path.join(self.root, *parts)

    def put(self, key: str, data: bytes) -> None:
        path = self._path(key)
        with self._lock:
            projected = self._bytes - self._sizes.get(key, 0) + len(data)
            if self._capacity is not None and projected > self._capacity:
                raise SpillStoreFullError(
                    f"spill directory {self.root!r} is full: writing "
                    f"{len(data)} bytes to {key!r} would exceed the "
                    f"configured capacity of {self._capacity} bytes "
                    f"(currently {self._bytes} bytes). Raise the spill "
                    f"capacity, point REPRO_SPILL_DIR at a larger volume, "
                    f"or raise the memory limit so less data spills."
                )
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                prefix=".tmp-", dir=os.path.dirname(path)
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(data)
                os.replace(tmp_path, path)
            except OSError as exc:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                import errno

                if exc.errno == errno.ENOSPC:
                    raise SpillStoreFullError(
                        f"spill directory {self.root!r} has no space left "
                        f"on device while writing {key!r} ({len(data)} "
                        f"bytes). Free disk space, point REPRO_SPILL_DIR "
                        f"at a larger volume, or raise the memory limit "
                        f"so less data spills."
                    ) from exc
                raise
            self._bytes = projected
            self._sizes[key] = len(data)

    def get(self, key: str) -> bytes:
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            raise ObjectNotFoundError(key) from None

    def delete(self, key: str) -> bool:
        path = self._path(key)
        with self._lock:
            self._bytes -= self._sizes.pop(key, 0)
            try:
                os.unlink(path)
            except FileNotFoundError:
                return False
            return True

    def exists(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    def size(self, key: str) -> int:
        try:
            return os.path.getsize(self._path(key))
        except FileNotFoundError:
            raise ObjectNotFoundError(key) from None

    def list(self, prefix: str = "") -> Iterator[str]:
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                if name.startswith(".tmp-"):
                    continue
                rel = os.path.relpath(os.path.join(dirpath, name), self.root)
                key = rel.replace(os.sep, "/")
                if key.startswith(prefix):
                    yield key

    @property
    def stored_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def close(self) -> None:
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    def __repr__(self) -> str:
        return (
            f"LocalDiskStore(root={self.root!r}, bytes={self._bytes}, "
            f"capacity={self._capacity})"
        )
