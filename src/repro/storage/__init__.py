"""Concrete array storages and the sparsifier/builder type mappings.

Importing this package registers every built-in storage with the global
:data:`~repro.storage.registry.REGISTRY`:

========================  =============================  ====================
Storage                   Sparsifier key (type)          Builder name
========================  =============================  ====================
:class:`DenseVector`      ``DenseVector``                ``vector(n)``
:class:`DenseMatrix`      ``DenseMatrix``                ``matrix(n,m)``
raw ``numpy.ndarray``     ``ndarray`` (1-D / 2-D)        ``array(n)``
:class:`CooVector`        ``CooVector``                  ``coo_vector(n)``
:class:`CooMatrix`        ``CooMatrix``                  ``coo(n,m)``
:class:`CsrMatrix`        ``CsrMatrix``                  ``csr(n,m)``
:class:`CscMatrix`        ``CscMatrix``                  ``csc(n,m)``
:class:`TiledMatrix`      ``TiledMatrix``                ``tiled(n,m)``
:class:`TiledVector`      ``TiledVector``                ``tiled_vector(n)``
:class:`SparseTiledMatrix` ``SparseTiledMatrix``         ``sparse_tiled(n,m)``
engine RDD                (handled by the planner)       ``rdd``
========================  =============================  ====================

User-defined storages participate by registering a sparsifier for their
type and a builder for their name — nothing else in the system needs to
change (the paper's extensibility claim).
"""

from .coo import CooMatrix, CooVector
from .csc import CscMatrix
from .csr import CsrMatrix
from .dense import DenseMatrix, DenseVector
from .registry import REGISTRY, BuildContext, StorageRegistry
from .sparse_tiled import SparseTiledMatrix
from .stats import DensityStats
from .tiled import TiledMatrix, TiledVector

__all__ = [
    "BuildContext",
    "CooMatrix",
    "CooVector",
    "CscMatrix",
    "CsrMatrix",
    "DenseMatrix",
    "DenseVector",
    "DensityStats",
    "REGISTRY",
    "SparseTiledMatrix",
    "StorageRegistry",
    "TiledMatrix",
    "TiledVector",
]
