"""Distributed block arrays: tiled matrices and block vectors (Section 5).

A :class:`TiledMatrix` is the paper's

.. code-block:: scala

    case class Tiled[T](rows: Long, cols: Long,
                        tiles: RDD[((Long, Long), Array[T])])

— a distributed bag of non-overlapping dense tiles, keyed by tile
coordinates.  Element ``(i, j)`` lives in tile ``(i // N, j // N)`` at
local offset ``(i % N, j % N)``.  Tiles are NumPy arrays; edge tiles are
*ragged* (smaller than N×N) rather than zero-padded, matching MLlib's
``BlockMatrix`` so the baseline and SAC operate on identical layouts.

The sparsifiers/builders registered here are the reference (collecting)
implementations used by the local interpreter; the planner never calls
them on the distributed path — it pattern-matches tiled sources and
generates block-level RDD plans instead (Sections 5.1–5.4).
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Iterator, Optional

import numpy as np

from ..comprehension.errors import SacTypeError
from ..engine import EngineContext, GridPartitioner, RDD
from .registry import REGISTRY, BuildContext


class TiledMatrix:
    """A matrix partitioned into a distributed grid of dense tiles."""

    #: Optional :class:`~repro.storage.stats.DensityStats` the planner
    #: propagated onto this result (a dense-tiled matrix can still have
    #: *absent* tiles when it was produced from sparse inputs — block
    #: density tracks that).  ``None`` means "no information": the cost
    #: model prices it at the dense upper bound.
    stats = None

    def __init__(self, rows: int, cols: int, tile_size: int, tiles: RDD):
        if rows <= 0 or cols <= 0:
            raise SacTypeError(f"matrix dimensions must be positive: {rows}x{cols}")
        if tile_size <= 0:
            raise SacTypeError(f"tile size must be positive: {tile_size}")
        self.rows = rows
        self.cols = cols
        self.tile_size = tile_size
        self.tiles = tiles

    # -- shape helpers ----------------------------------------------------

    @property
    def grid_rows(self) -> int:
        """Number of tile rows (⌈rows / N⌉)."""
        return math.ceil(self.rows / self.tile_size)

    @property
    def grid_cols(self) -> int:
        """Number of tile columns (⌈cols / N⌉)."""
        return math.ceil(self.cols / self.tile_size)

    def tile_shape(self, block_row: int, block_col: int) -> tuple[int, int]:
        """Shape of the (possibly ragged edge) tile at a grid position."""
        height = min(self.tile_size, self.rows - block_row * self.tile_size)
        width = min(self.tile_size, self.cols - block_col * self.tile_size)
        return height, width

    def default_partitioner(self) -> GridPartitioner:
        return GridPartitioner(
            self.grid_rows,
            self.grid_cols,
            self.tiles.ctx.default_parallelism,
        )

    # -- construction -------------------------------------------------------

    @classmethod
    def from_numpy(
        cls,
        engine: EngineContext,
        array: np.ndarray,
        tile_size: int,
        num_partitions: Optional[int] = None,
    ) -> "TiledMatrix":
        """Cut a local 2-D array into tiles and distribute them."""
        array = np.asarray(array, dtype=np.float64)
        if array.ndim != 2:
            raise SacTypeError(f"need a 2-D array, got shape {array.shape}")
        rows, cols = array.shape
        tiles = []
        for bi in range(math.ceil(rows / tile_size)):
            for bj in range(math.ceil(cols / tile_size)):
                block = array[
                    bi * tile_size : (bi + 1) * tile_size,
                    bj * tile_size : (bj + 1) * tile_size,
                ].copy()
                tiles.append(((bi, bj), block))
        rdd = engine.parallelize(
            tiles, num_partitions or engine.default_parallelism
        )
        return cls(rows, cols, tile_size, rdd)

    @classmethod
    def from_items(
        cls,
        engine: EngineContext,
        rows: int,
        cols: int,
        tile_size: int,
        items: Iterable[tuple[tuple[int, int], Any]],
        num_partitions: Optional[int] = None,
    ) -> "TiledMatrix":
        """The paper's ``tiled(n,m)`` builder applied to a local list.

        Groups elements by tile coordinate (``group by (i/N, j/N)``) and
        assembles each group into a dense tile.
        """
        grid: dict[tuple[int, int], np.ndarray] = {}
        matrix = cls(rows, cols, tile_size, engine.empty_rdd())  # shape helper
        for (i, j), value in items:
            if not (0 <= i < rows and 0 <= j < cols):
                continue
            coord = (i // tile_size, j // tile_size)
            tile = grid.get(coord)
            if tile is None:
                tile = np.zeros(matrix.tile_shape(*coord))
                grid[coord] = tile
            tile[i % tile_size, j % tile_size] = value
        rdd = engine.parallelize(
            sorted(grid.items()), num_partitions or engine.default_parallelism
        )
        return cls(rows, cols, tile_size, rdd)

    @classmethod
    def from_tile_rdd(
        cls, rows: int, cols: int, tile_size: int, tiles: RDD
    ) -> "TiledMatrix":
        """Wrap an existing RDD of ``((bi, bj), ndarray)`` pairs."""
        return cls(rows, cols, tile_size, tiles)

    # -- persistence ---------------------------------------------------------

    def save(self, path: str) -> None:
        """Save to an ``.npz`` archive (shape, tile size, and all tiles)."""
        arrays = {"__meta__": np.array([self.rows, self.cols, self.tile_size])}
        for (bi, bj), tile in self.tiles.collect():
            arrays[f"tile_{bi}_{bj}"] = tile
        np.savez(path, **arrays)

    @classmethod
    def load(
        cls,
        engine: EngineContext,
        path: str,
        num_partitions: Optional[int] = None,
    ) -> "TiledMatrix":
        """Load a matrix saved with :meth:`save`."""
        archive = np.load(path)
        if "__meta__" not in archive.files:
            raise SacTypeError(f"{path} is not a saved TiledMatrix archive")
        rows, cols, tile_size = (int(x) for x in archive["__meta__"])
        tiles = []
        for name in archive.files:
            if name == "__meta__":
                continue
            _prefix, bi, bj = name.split("_")
            tiles.append(((int(bi), int(bj)), archive[name]))
        rdd = engine.parallelize(
            sorted(tiles), num_partitions or engine.default_parallelism
        )
        return cls(rows, cols, tile_size, rdd)

    # -- materialization ---------------------------------------------------

    def to_numpy(self) -> np.ndarray:
        """Collect all tiles into one local dense array."""
        out = np.zeros((self.rows, self.cols))
        for (bi, bj), tile in self.tiles.collect():
            n = self.tile_size
            out[bi * n : bi * n + tile.shape[0], bj * n : bj * n + tile.shape[1]] = tile
        return out

    def sparsify(self) -> Iterator[tuple[tuple[int, int], Any]]:
        """Reference sparsifier (Section 5)::

            [ ((ii*N+i, jj*N+j), a(i,j)) | ((ii,jj),a) <- tiles,
              i <- 0 until N, j <- 0 until N ]
        """
        n = self.tile_size
        for (bi, bj), tile in self.tiles.collect():
            for i in range(tile.shape[0]):
                for j in range(tile.shape[1]):
                    yield (bi * n + i, bj * n + j), tile[i, j].item()

    def cache(self) -> "TiledMatrix":
        self.tiles.cache()
        return self

    def materialize(self) -> "TiledMatrix":
        """Cache and force computation now, cutting the lazy lineage.

        Iterative algorithms must call this (or :meth:`cache` plus an
        action) each step, exactly as on Spark, or the lineage grows
        unboundedly.
        """
        self.tiles.cache()
        self.tiles.count()
        return self

    def num_tiles(self) -> int:
        return self.tiles.count()

    def __repr__(self) -> str:
        return (
            f"TiledMatrix({self.rows}x{self.cols}, tile={self.tile_size}, "
            f"grid={self.grid_rows}x{self.grid_cols})"
        )


class TiledVector:
    """A vector partitioned into a distributed list of dense blocks."""

    #: See :attr:`TiledMatrix.stats`.
    stats = None

    def __init__(self, length: int, tile_size: int, blocks: RDD):
        if length <= 0:
            raise SacTypeError(f"vector length must be positive: {length}")
        self.length = length
        self.tile_size = tile_size
        self.blocks = blocks

    @property
    def grid_size(self) -> int:
        return math.ceil(self.length / self.tile_size)

    def block_length(self, block_index: int) -> int:
        return min(self.tile_size, self.length - block_index * self.tile_size)

    @classmethod
    def from_numpy(
        cls,
        engine: EngineContext,
        array: np.ndarray,
        tile_size: int,
        num_partitions: Optional[int] = None,
    ) -> "TiledVector":
        array = np.asarray(array, dtype=np.float64)
        if array.ndim != 1:
            raise SacTypeError(f"need a 1-D array, got shape {array.shape}")
        blocks = [
            (bi, array[bi * tile_size : (bi + 1) * tile_size].copy())
            for bi in range(math.ceil(len(array) / tile_size))
        ]
        rdd = engine.parallelize(blocks, num_partitions or engine.default_parallelism)
        return cls(len(array), tile_size, rdd)

    @classmethod
    def from_items(
        cls,
        engine: EngineContext,
        length: int,
        tile_size: int,
        items: Iterable[tuple[int, Any]],
        num_partitions: Optional[int] = None,
    ) -> "TiledVector":
        """The paper's block-vector builder: ``group by i/N``."""
        grid: dict[int, np.ndarray] = {}
        helper = cls(length, tile_size, engine.empty_rdd())
        for i, value in items:
            if not 0 <= i < length:
                continue
            block_index = i // tile_size
            block = grid.get(block_index)
            if block is None:
                block = np.zeros(helper.block_length(block_index))
                grid[block_index] = block
            block[i % tile_size] = value
        rdd = engine.parallelize(
            sorted(grid.items()), num_partitions or engine.default_parallelism
        )
        return cls(length, tile_size, rdd)

    def to_numpy(self) -> np.ndarray:
        out = np.zeros(self.length)
        n = self.tile_size
        for bi, block in self.blocks.collect():
            out[bi * n : bi * n + block.shape[0]] = block
        return out

    def sparsify(self) -> Iterator[tuple[int, Any]]:
        n = self.tile_size
        for bi, block in self.blocks.collect():
            for i in range(block.shape[0]):
                yield bi * n + i, block[i].item()

    def cache(self) -> "TiledVector":
        self.blocks.cache()
        return self

    def materialize(self) -> "TiledVector":
        """Cache and force computation now (see ``TiledMatrix.materialize``)."""
        self.blocks.cache()
        self.blocks.count()
        return self

    def __repr__(self) -> str:
        return f"TiledVector({self.length}, tile={self.tile_size})"


# ----------------------------------------------------------------------
# Registration
# ----------------------------------------------------------------------


def _require_engine(ctx: BuildContext, name: str) -> EngineContext:
    if ctx.engine is None:
        raise SacTypeError(
            f"builder {name!r} needs an engine context; run the query "
            "through a SacSession connected to an EngineContext"
        )
    return ctx.engine


def _build_tiled(ctx: BuildContext, args: tuple, items) -> TiledMatrix:
    if len(args) != 2:
        raise SacTypeError("tiled(n,m) builder takes two dimension arguments")
    engine = _require_engine(ctx, "tiled")
    return TiledMatrix.from_items(
        engine, int(args[0]), int(args[1]), ctx.tile_size, items,
        num_partitions=ctx.num_partitions,
    )


def _build_tiled_vector(ctx: BuildContext, args: tuple, items) -> TiledVector:
    if len(args) != 1:
        raise SacTypeError("tiled_vector(n) builder takes one dimension argument")
    engine = _require_engine(ctx, "tiled_vector")
    return TiledVector.from_items(
        engine, int(args[0]), ctx.tile_size, items,
        num_partitions=ctx.num_partitions,
    )


def _build_rdd(ctx: BuildContext, args: tuple, items) -> Any:
    """``rdd(L)`` / ``rdd[...]``: distribute an association list."""
    engine = _require_engine(ctx, "rdd")
    return engine.parallelize(list(items), ctx.num_partitions)


REGISTRY.register_sparsifier(TiledMatrix, lambda m: m.sparsify())
REGISTRY.register_sparsifier(TiledVector, lambda v: v.sparsify())
REGISTRY.register_builder("tiled", _build_tiled)
REGISTRY.register_builder("tiled_vector", _build_tiled_vector)
REGISTRY.register_builder("rdd", _build_rdd)
