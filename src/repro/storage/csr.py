"""Compressed Sparse Row storage.

The paper's framework claims extensibility to "customized storage
structures" — CSR is the canonical example (Section 8 mentions tiles in
compressed sparse column format as future work; CSR is the row-major
sibling).  Registering this class is *all* that is needed for CSR
matrices to participate in any comprehension: the sparsifier up-coerces
rows lazily and the builder compresses an association list.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

import numpy as np

from ..comprehension.errors import SacTypeError
from .registry import REGISTRY, BuildContext


class CsrMatrix:
    """CSR matrix: ``indptr`` (n+1), ``indices`` (nnz), ``data`` (nnz)."""

    def __init__(
        self,
        rows: int,
        cols: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
    ):
        if len(indptr) != rows + 1:
            raise SacTypeError(
                f"indptr length {len(indptr)} does not match rows {rows}"
            )
        if len(indices) != len(data):
            raise SacTypeError("indices and data lengths differ")
        self.rows = rows
        self.cols = cols
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data)

    @classmethod
    def from_items(
        cls, rows: int, cols: int, items: Iterable[tuple[tuple[int, int], Any]]
    ) -> "CsrMatrix":
        """Build from an association list (clipping, dropping zeros)."""
        per_row: list[list[tuple[int, Any]]] = [[] for _ in range(rows)]
        for (i, j), value in items:
            if 0 <= i < rows and 0 <= j < cols and value != 0:
                per_row[i].append((j, value))
        indptr = np.zeros(rows + 1, dtype=np.int64)
        indices: list[int] = []
        data: list[Any] = []
        for i, row in enumerate(per_row):
            row.sort()
            for j, value in row:
                indices.append(j)
                data.append(value)
            indptr[i + 1] = len(indices)
        return cls(rows, cols, indptr, np.array(indices, dtype=np.int64), np.array(data))

    @classmethod
    def from_numpy(cls, array: np.ndarray) -> "CsrMatrix":
        array = np.asarray(array)
        if array.ndim != 2:
            raise SacTypeError(f"need a 2-D array, got shape {array.shape}")
        rows, cols = array.shape
        return cls.from_items(
            rows,
            cols,
            (
                ((int(i), int(j)), array[i, j].item())
                for i, j in zip(*np.nonzero(array))
            ),
        )

    @property
    def nnz(self) -> int:
        return int(self.indptr[-1])

    def density(self) -> float:
        """Fill ratio from the stored structure — free, no scan."""
        total = self.rows * self.cols
        return self.nnz / total if total else 0.0

    def sparsify(self) -> Iterator[tuple[tuple[int, int], Any]]:
        """Walk rows in order, yielding ``((i, j), value)`` per stored entry."""
        for i in range(self.rows):
            for pos in range(self.indptr[i], self.indptr[i + 1]):
                yield (i, int(self.indices[pos])), self.data[pos].item()

    def get(self, i: int, j: int) -> Any:
        start, end = self.indptr[i], self.indptr[i + 1]
        pos = np.searchsorted(self.indices[start:end], j)
        if pos < end - start and self.indices[start + pos] == j:
            return self.data[start + pos].item()
        return 0

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Column indices and values of row ``i`` (zero-copy views)."""
        start, end = self.indptr[i], self.indptr[i + 1]
        return self.indices[start:end], self.data[start:end]

    def to_numpy(self) -> np.ndarray:
        out = np.zeros((self.rows, self.cols))
        for i in range(self.rows):
            cols, values = self.row(i)
            out[i, cols] = values
        return out

    def __repr__(self) -> str:
        return f"CsrMatrix({self.rows}x{self.cols}, nnz={self.nnz})"


def _build_csr(ctx: BuildContext, args: tuple, items) -> CsrMatrix:
    if len(args) != 2:
        raise SacTypeError("csr(n,m) builder takes two dimension arguments")
    return CsrMatrix.from_items(int(args[0]), int(args[1]), items)


REGISTRY.register_sparsifier(CsrMatrix, lambda m: m.sparsify())
REGISTRY.register_builder("csr", _build_csr)
