"""Sparsifier/builder registry: the paper's type-mapping layer.

An *abstract array* is an association list mapping indices to values.  A
concrete storage participates in the framework through two functions
(Section 1.1):

* a **sparsifier** — storage → association list, registered per storage
  *type* and found by inspecting the value a generator traverses (the
  paper's compiler finds it by type inference; Python gives us the type
  at the same place, the generator's source);
* a **builder** — association list → storage, registered per *name* and
  invoked as ``name(args)[ ... ]`` in a query.

Builders receive a :class:`BuildContext` carrying the engine context and
block size, so distributed builders (``tiled``, ``rdd``) can construct
RDD-backed storages while local builders ignore it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Optional

from ..comprehension.errors import SacTypeError

SparsifyFn = Callable[[Any], Iterator[tuple[Any, Any]]]
BuildFn = Callable[["BuildContext", tuple, Iterable[tuple[Any, Any]]], Any]


@dataclass
class BuildContext:
    """Ambient parameters available to builders.

    Attributes:
        engine: the :class:`~repro.engine.context.EngineContext` used by
            distributed builders; ``None`` in purely local evaluation.
        tile_size: side length N of square tiles (paper Section 5).
        num_partitions: partition count hint for distributed builders.
    """

    engine: Optional[Any] = None
    tile_size: int = 100
    num_partitions: Optional[int] = None


class StorageRegistry:
    """Maps storage types to sparsifiers and builder names to builders."""

    def __init__(self):
        self._sparsifiers: dict[type, SparsifyFn] = {}
        self._builders: dict[str, BuildFn] = {}

    # -- registration ---------------------------------------------------

    def register_sparsifier(self, storage_type: type, fn: SparsifyFn) -> None:
        self._sparsifiers[storage_type] = fn

    def register_builder(self, name: str, fn: BuildFn) -> None:
        self._builders[name] = fn

    # -- lookup -----------------------------------------------------------

    def sparsifier_for(self, value: Any) -> Optional[SparsifyFn]:
        """The sparsifier registered for ``value``'s type, if any.

        Subclasses inherit their base's sparsifier unless they register
        their own.
        """
        for cls in type(value).__mro__:
            if cls in self._sparsifiers:
                return self._sparsifiers[cls]
        return None

    def is_storage(self, value: Any) -> bool:
        return self.sparsifier_for(value) is not None

    def sparsify(self, value: Any) -> Iterator[tuple[Any, Any]]:
        """Up-coerce a storage to its association list."""
        fn = self.sparsifier_for(value)
        if fn is None:
            raise SacTypeError(
                f"no sparsifier registered for {type(value).__name__}"
            )
        return fn(value)

    def has_builder(self, name: str) -> bool:
        return name in self._builders

    def build(
        self,
        name: str,
        args: tuple,
        items: Iterable[tuple[Any, Any]],
        context: Optional[BuildContext] = None,
    ) -> Any:
        """Down-coerce an association list via the named builder."""
        try:
            fn = self._builders[name]
        except KeyError:
            raise SacTypeError(
                f"unknown builder {name!r}; known: {sorted(self._builders)}"
            ) from None
        return fn(context or BuildContext(), args, items)


#: The global registry; storage modules register themselves on import.
REGISTRY = StorageRegistry()
