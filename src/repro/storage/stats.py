"""Density statistics for sparse-aware planning.

The physical planner prices candidate strategies by the bytes the
engine's shuffle accountant will measure.  For sparse storages that
volume is governed by *block density* — the fraction of grid tiles that
are actually stored (absent tiles never join, never replicate, never
shuffle) — while the element-level density governs the coordinate path,
which ships one record per stored non-zero.  :class:`DensityStats`
carries both, recorded cheaply at construction time so ``density()``
never has to run a count action at planning time.

Propagation rules (used by the tiled translation rules to annotate
their results, so chained queries stay density-aware):

* **exact** — transpose, scalar multiply, negation, and any map whose
  support equals its input's support carry the stats through unchanged.
* **union bound** — ``x + y`` / ``x - y``: the result's support is
  contained in the union of the inputs' supports, so densities add
  (capped at 1).  This is a sound upper bound.
* **product bound** — ``x * y`` (and ``x / y`` on the numerator): the
  result annihilates wherever either factor is zero, so the minimum of
  the input densities bounds the output.  Sound upper bound.
* **contraction estimate** — a group-by contraction over a shared
  dimension of size ``l`` (matrix multiply, row sums) uses the
  expected density under independent uniform placement,
  ``1 - (1 - d_a · d_b)^l``.  Unlike the linear rules this is an
  *estimate*, not a bound: adversarially correlated layouts (a dense
  column meeting a dense row) can exceed it.  The documented accuracy
  contract — pinned by ``tests/test_density_fuzz.py`` — is that for
  uniformly placed inputs the estimate never undershoots the true
  density by more than :data:`CONTRACTION_SLACK`.

Block densities join through the same combinators; additionally every
tiled join intersects the present-tile sets of its generators, so a
joined result's block density is also capped by the minimum input block
density (applied by the rules in :mod:`repro.planner.tiling`).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Multiplicative slack the contraction estimate is allowed below the
#: true density on uniformly placed inputs (see module docstring).
CONTRACTION_SLACK = 2.0

#: Floor for clamping: estimates must stay positive.
_MIN = 1e-12


def _clamp(value: float) -> float:
    return min(1.0, max(_MIN, float(value)))


@dataclass(frozen=True)
class DensityStats:
    """Cheap per-storage sparsity statistics.

    ``density`` is the element-level fill ratio (nnz over logical size)
    and ``block_density`` the fraction of grid tiles stored.  Both are
    clamped to ``(0, 1]`` — a zero would make every cost estimate zero,
    which is never what an *upper bound* should do.
    """

    density: float = 1.0
    block_density: float = 1.0

    def __post_init__(self):
        object.__setattr__(self, "density", _clamp(self.density))
        object.__setattr__(self, "block_density", _clamp(self.block_density))

    @property
    def is_dense(self) -> bool:
        return self.density >= 1.0 and self.block_density >= 1.0


#: The statistics of a storage with no sparsity information: the dense
#: upper bound the cost model used before densities existed.
DENSE = DensityStats(1.0, 1.0)


def of(storage) -> DensityStats:
    """The storage's recorded/propagated stats, or the dense bound.

    Reads the ``stats`` attribute every tiled storage exposes
    (:class:`~repro.storage.sparse_tiled.SparseTiledMatrix` records it
    at construction; dense tiled results carry what the planner
    propagated).  Unknown storages price densely.
    """
    stats = getattr(storage, "stats", None)
    return stats if isinstance(stats, DensityStats) else DENSE


def exact(stats: DensityStats) -> DensityStats:
    """Support-preserving map (transpose, scalar multiply, negate)."""
    return stats


def union(a: DensityStats, b: DensityStats) -> DensityStats:
    """Upper bound for ``x + y`` / ``x - y``: supports union."""
    return DensityStats(
        min(1.0, a.density + b.density),
        min(1.0, a.block_density + b.block_density),
    )


def product(a: DensityStats, b: DensityStats) -> DensityStats:
    """Upper bound for ``x * y``: the result annihilates where either
    factor does, so each level is bounded by the sparser input."""
    return DensityStats(
        min(a.density, b.density),
        min(a.block_density, b.block_density),
    )


def contraction(
    a: DensityStats, b: DensityStats, join_dim: int, grid_join: int
) -> DensityStats:
    """Expected result density of a sum-contraction over a shared
    dimension (``join_dim`` elements, ``grid_join`` tile blocks).

    A result element is non-zero when any of its ``join_dim`` addends
    is; under independent placement each addend fires with probability
    ``d_a · d_b``.  The same argument at tile granularity gives the
    block density.  An estimate, not a bound — see the module docstring.
    """
    return DensityStats(
        _fill_after_sum(a.density * b.density, join_dim),
        _fill_after_sum(a.block_density * b.block_density, grid_join),
    )


def reduction(stats: DensityStats, join_dim: int, grid_join: int) -> DensityStats:
    """Single-input projection (row/column sums): ``join_dim`` addends
    per result element, each present with the input's density."""
    return DensityStats(
        _fill_after_sum(stats.density, join_dim),
        _fill_after_sum(stats.block_density, grid_join),
    )


def _fill_after_sum(p: float, terms: int) -> float:
    """``1 - (1 - p)^terms``: fill ratio after summing ``terms``
    independent slots that are each non-zero with probability ``p``."""
    terms = max(1, int(terms))
    if p >= 1.0:
        return 1.0
    return min(1.0, 1.0 - (1.0 - p) ** terms)
