"""Coordinate-format sparse storages (Section 4's distributed format).

A COO matrix stores only its non-zero entries as ``((i, j), value)``
pairs.  The paper uses this format in two roles: as the *abstract*
representation every storage sparsifies into, and as a concrete
distributed format (an RDD of coordinate pairs) whose inefficiency
relative to tiling motivates Section 5.  ``CooMatrix``/``CooVector`` here
are the local concrete form; the distributed form is simply an engine RDD
of the same pairs (see :mod:`repro.planner.rdd_rules`).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from ..comprehension.errors import SacTypeError
from .registry import REGISTRY, BuildContext


class CooVector:
    """Sparse vector: a dict from index to value plus a length."""

    def __init__(self, length: int, entries: dict[int, Any]):
        self.length = length
        self.entries = entries

    @classmethod
    def from_items(cls, length: int, items: Iterable[tuple[int, Any]]) -> "CooVector":
        entries: dict[int, Any] = {}
        for index, value in items:
            if 0 <= index < length and value != 0:
                entries[index] = value
        return cls(length, entries)

    @property
    def nnz(self) -> int:
        return len(self.entries)

    def density(self) -> float:
        """Fill ratio from the stored entries — free, no scan."""
        return self.nnz / self.length if self.length else 0.0

    def sparsify(self) -> Iterator[tuple[int, Any]]:
        return iter(sorted(self.entries.items()))

    def get(self, index: int) -> Any:
        return self.entries.get(index, 0)

    def __repr__(self) -> str:
        return f"CooVector(length={self.length}, nnz={self.nnz})"


class CooMatrix:
    """Sparse matrix: a dict from ``(i, j)`` to value plus dimensions."""

    def __init__(self, rows: int, cols: int, entries: dict[tuple[int, int], Any]):
        self.rows = rows
        self.cols = cols
        self.entries = entries

    @classmethod
    def from_items(
        cls, rows: int, cols: int, items: Iterable[tuple[tuple[int, int], Any]]
    ) -> "CooMatrix":
        entries: dict[tuple[int, int], Any] = {}
        for (i, j), value in items:
            if 0 <= i < rows and 0 <= j < cols and value != 0:
                entries[(i, j)] = value
        return cls(rows, cols, entries)

    @classmethod
    def from_numpy(cls, array) -> "CooMatrix":
        import numpy as np

        array = np.asarray(array)
        if array.ndim != 2:
            raise SacTypeError(f"need a 2-D array, got shape {array.shape}")
        rows, cols = array.shape
        nz = np.nonzero(array)
        entries = {
            (int(i), int(j)): array[i, j].item() for i, j in zip(*nz)
        }
        return cls(rows, cols, entries)

    @property
    def nnz(self) -> int:
        return len(self.entries)

    def density(self) -> float:
        total = self.rows * self.cols
        return self.nnz / total if total else 0.0

    def sparsify(self) -> Iterator[tuple[tuple[int, int], Any]]:
        return iter(sorted(self.entries.items()))

    def get(self, i: int, j: int) -> Any:
        return self.entries.get((i, j), 0)

    def to_numpy(self):
        import numpy as np

        out = np.zeros((self.rows, self.cols))
        for (i, j), value in self.entries.items():
            out[i, j] = value
        return out

    def __repr__(self) -> str:
        return f"CooMatrix({self.rows}x{self.cols}, nnz={self.nnz})"


def _build_coo(ctx: BuildContext, args: tuple, items) -> CooMatrix:
    if len(args) != 2:
        raise SacTypeError("coo(n,m) builder takes two dimension arguments")
    return CooMatrix.from_items(int(args[0]), int(args[1]), items)


def _build_coo_vector(ctx: BuildContext, args: tuple, items) -> CooVector:
    if len(args) != 1:
        raise SacTypeError("coo_vector(n) builder takes one dimension argument")
    return CooVector.from_items(int(args[0]), items)


REGISTRY.register_sparsifier(CooVector, lambda v: v.sparsify())
REGISTRY.register_sparsifier(CooMatrix, lambda m: m.sparsify())
REGISTRY.register_builder("coo", _build_coo)
REGISTRY.register_builder("coo_vector", _build_coo_vector)
