"""SAC — Scalable Array Comprehensions, reproduced in Python.

A reproduction of *Scalable Linear Algebra Programming for Big Data
Analysis* (L. Fegaras, EDBT 2021): an SQL-expressive array-comprehension
language compiled, through storage-oblivious translation rules, to
data-parallel programs over distributed block arrays.

Quick start::

    import numpy as np
    from repro import SacSession

    session = SacSession(tile_size=100)
    A = session.matrix(np.random.rand(500, 500))
    B = session.matrix(np.random.rand(500, 500))
    C = A @ B                       # compiled to the SUMMA-style plan
    row_totals = (A + B).row_sums() # preserve-tiling + tiled reduce

    # or write the comprehension yourself:
    product = session.run(
        "tiled(n, m)[ ((i,j), +/v) | ((i,k),a) <- A, ((kk,j),b) <- B,"
        " kk == k, let v = a*b, group by (i,j) ]",
        A=A.storage, B=B.storage, n=500, m=500)

Package map: :mod:`repro.engine` (Spark-like dataflow substrate),
:mod:`repro.comprehension` (language + reference semantics),
:mod:`repro.storage` (sparsifier/builder type mappings),
:mod:`repro.planner` (the paper's translation rules),
:mod:`repro.core` (sessions and array handles), :mod:`repro.mllib`
(the MLlib-workalike baseline), :mod:`repro.linalg` (ML workloads),
:mod:`repro.workloads` (input generators).
"""

from .comprehension import (
    SacError, SacNameError, SacPlanError, SacSyntaxError, SacTypeError,
)
from .core import CompiledQuery, SacMatrix, SacSession, SacVector, ops
from .engine import ClusterSpec, EngineContext, PAPER_CLUSTER
from .planner import PlannerOptions
from .storage import (
    CooMatrix, CooVector, CsrMatrix, DenseMatrix, DenseVector, TiledMatrix,
    TiledVector,
)

__version__ = "1.0.0"

__all__ = [
    "ClusterSpec",
    "CompiledQuery",
    "CooMatrix",
    "CooVector",
    "CsrMatrix",
    "DenseMatrix",
    "DenseVector",
    "EngineContext",
    "PAPER_CLUSTER",
    "PlannerOptions",
    "SacError",
    "SacMatrix",
    "SacNameError",
    "SacPlanError",
    "SacSession",
    "SacSyntaxError",
    "SacTypeError",
    "SacVector",
    "TiledMatrix",
    "TiledVector",
    "ops",
    "__version__",
]
