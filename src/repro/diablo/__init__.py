"""DIABLO-style front end: imperative array loops compiled via SAC.

The paper positions SAC as the back end of DIABLO (Section 1.1), which
translates array-based loops to comprehensions.  This package implements
that pipeline for the accumulation-loop subset::

    from repro import SacSession
    from repro.diablo import run

    env = run(session, '''
        var V: tiled_vector(n)
        for i = 0, n-1 do
          for j = 0, m-1 do
            V[i] += M[i, j]
          end
        end
    ''', {"M": tiled_matrix, "n": n, "m": m})
    env["V"].to_numpy()

The loops become comprehensions, SAC's indexing desugar turns ``M[i, j]``
into a generator, and its range promotion replaces the loops with the
traversal — so the program above compiles to the same tiled-reduce plan
as the hand-written Figure 1 query.
"""

from .parser import Assign, ForLoop, IfStmt, Program, VarDecl, parse_program
from .translate import CompiledStatement, run, translate, translate_program

__all__ = [
    "Assign",
    "CompiledStatement",
    "ForLoop",
    "IfStmt",
    "Program",
    "VarDecl",
    "parse_program",
    "run",
    "translate",
    "translate_program",
]
