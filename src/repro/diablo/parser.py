"""Parser for the DIABLO-style loop language.

The paper's companion system DIABLO ("a Data-Intensive Array-Based Loop
Optimizer", Section 1.1) translates imperative array loops to
comprehensions and uses SAC as its back end.  This module parses the
loop language; :mod:`repro.diablo.translate` performs the translation.

Syntax::

    program   ::= statement*
    statement ::= 'var' ident ':' ident '(' expr (',' expr)* ')' ';'?
                | 'for' ident '=' expr ',' expr 'do' statement* 'end'
                | 'if' '(' expr ')' statement
                | lvalue ('=' | ':=' | '+=' | '*=') expr ';'?
    lvalue    ::= ident ('[' expr (',' expr)* ']')?

Loop bounds are **inclusive** (`for i = 0, n-1`), matching DIABLO's
examples.  Expressions are the full SAC expression language.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from ..comprehension.ast import Expr
from ..comprehension.parser import _Parser


@dataclass(frozen=True)
class VarDecl:
    """``var C: matrix(n, m)`` — declares the target's builder."""

    name: str
    builder: str
    args: tuple[Expr, ...]


@dataclass(frozen=True)
class Assign:
    """``target[indices] op rhs`` with op in ``=``, ``+=``, ``*=``."""

    target: str
    indices: tuple[Expr, ...]  # empty for scalar targets
    op: str  # '=', '+=', '*='
    rhs: Expr


@dataclass(frozen=True)
class ForLoop:
    """``for var = lo, hi do body end`` (inclusive bounds)."""

    var: str
    lo: Expr
    hi: Expr
    body: tuple["Statement", ...]


@dataclass(frozen=True)
class IfStmt:
    """``if (cond) statement``."""

    cond: Expr
    body: "Statement"


Statement = Union[VarDecl, Assign, ForLoop, IfStmt]


@dataclass
class Program:
    statements: tuple[Statement, ...] = field(default=())


def parse_program(source: str) -> Program:
    """Parse a loop program."""
    parser = _LoopParser(source)
    statements = []
    while parser.current_kind() != "eof":
        statements.append(parser.statement())
    return Program(tuple(statements))


class _LoopParser(_Parser):
    """Statement layer on top of the expression parser."""

    def current_kind(self) -> str:
        return self._current.kind

    def _skip_semicolons(self) -> None:
        while self._current.is_op(";"):
            self._advance()

    def statement(self) -> Statement:
        self._skip_semicolons()
        token = self._current
        if token.is_keyword("var"):
            return self._var_decl()
        if token.is_keyword("for"):
            return self._for_loop()
        if token.is_keyword("if"):
            return self._if_statement()
        if token.kind == "ident":
            return self._assignment()
        raise self._error(f"expected a statement, found {token.text!r}")

    def _var_decl(self) -> VarDecl:
        self._expect_keyword("var")
        name = self._ident()
        self._expect_op(":")
        builder = self._ident()
        self._expect_op("(")
        args = [self.expression()]
        while self._current.is_op(","):
            self._advance()
            args.append(self.expression())
        self._expect_op(")")
        self._skip_semicolons()
        return VarDecl(name, builder, tuple(args))

    def _for_loop(self) -> ForLoop:
        self._expect_keyword("for")
        var = self._ident()
        self._expect_op("=")
        lo = self.expression()
        self._expect_op(",")
        hi = self.expression()
        self._expect_keyword("do")
        body = []
        while not self._current.is_keyword("end"):
            if self._current.kind == "eof":
                raise self._error("unterminated 'for' (missing 'end')")
            body.append(self.statement())
        self._expect_keyword("end")
        self._skip_semicolons()
        return ForLoop(var, lo, hi, tuple(body))

    def _if_statement(self) -> IfStmt:
        self._expect_keyword("if")
        self._expect_op("(")
        cond = self.expression()
        self._expect_op(")")
        body = self.statement()
        return IfStmt(cond, body)

    def _assignment(self) -> Assign:
        target = self._ident()
        indices: list[Expr] = []
        if self._current.is_op("["):
            self._advance()
            indices.append(self.expression())
            while self._current.is_op(","):
                self._advance()
                indices.append(self.expression())
            self._expect_op("]")
        token = self._current
        if token.is_op("=", ":="):
            op = "="
        elif token.is_op("+="):
            op = "+="
        elif token.is_op("*="):
            op = "*="
        else:
            raise self._error(
                f"expected '=', ':=', '+=' or '*=', found {token.text!r}"
            )
        self._advance()
        rhs = self.expression()
        self._skip_semicolons()
        return Assign(target, tuple(indices), op, rhs)

    def _ident(self) -> str:
        token = self._current
        if token.kind != "ident":
            raise self._error(f"expected an identifier, found {token.text!r}")
        self._advance()
        return token.text
