"""Loop-to-comprehension translation (the DIABLO idea, Section 1.1).

Each array update statement inside a loop nest becomes one monolithic
comprehension:

* ``C[i, j] += rhs`` inside loops over ``i, j, k``  →

  .. code-block:: text

      C = builder(args)[ ((i,j), +/v$) | i <- lo..hi, j <- ..., k <- ...,
                         guards..., let v$ = rhs, group by (i, j) ]

  — the loop variables become range generators, enclosing ``if``
  conditions become guards, and the accumulation becomes a group-by
  aggregation keyed by the target indices.

* ``C[i, j] = rhs`` (plain assignment) becomes the comprehension without
  a group-by; it is only deterministic when every loop variable feeds
  the target indices, which the translator checks.

* ``s += rhs`` with a scalar target becomes a total reduction
  ``+/[ rhs | loops ]``.

Array *reads* ``M[i, k]`` in the right-hand side need no treatment here:
SAC's indexing desugar turns them into generators over ``M`` and its
range-promotion pass then replaces the loops with array traversals — so
a triple-loop matrix multiply compiles to the same group-by-join plan as
the hand-written comprehension (``tests/test_diablo.py`` pins this).

Semantics note: like DIABLO, an assignment builds the *new* array from
the *old* environment — ``V[i] = V[i+1]`` reads the old ``V`` throughout,
with none of the order-dependence of in-place loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import itertools

from ..comprehension.ast import (
    BuilderApp, Comprehension, Expr, Generator, GroupByQual,
    Guard, LetQual, Qualifier, RangeExpr, Reduce, TupleExpr, Var, VarPat,
    free_vars, to_source,
)
from ..comprehension.errors import SacPlanError
from .parser import Assign, ForLoop, IfStmt, Program, Statement, VarDecl, parse_program

_REDUCTION_OPS = {"+=": "+", "*=": "*"}


@dataclass
class CompiledStatement:
    """One translated update: the target name and its SAC query."""

    target: str
    query: Expr
    source: str  # rendered query text

    def __str__(self) -> str:
        return f"{self.target} = {self.source}"


@dataclass
class _Scope:
    """Enclosing loop ranges and if-conditions at a statement."""

    loops: list[tuple[str, Expr, Expr]]  # (var, lo, hi_inclusive)
    guards: list[Expr]


def translate(source: str) -> list[CompiledStatement]:
    """Translate a loop program into a sequence of SAC queries."""
    program = parse_program(source)
    return translate_program(program)


def translate_program(program: Program) -> list[CompiledStatement]:
    declarations: dict[str, VarDecl] = {}
    compiled: list[CompiledStatement] = []
    # Plain-text fresh names: translated queries must re-parse as source.
    counter = itertools.count()
    fresh = lambda: f"_dv{next(counter)}"  # noqa: E731 - tiny local factory

    def walk(statement: Statement, scope: _Scope) -> None:
        if isinstance(statement, VarDecl):
            if scope.loops or scope.guards:
                raise SacPlanError(
                    f"declare {statement.name!r} outside loops"
                )
            declarations[statement.name] = statement
        elif isinstance(statement, ForLoop):
            inner = _Scope(
                scope.loops + [(statement.var, statement.lo, statement.hi)],
                list(scope.guards),
            )
            for child in statement.body:
                walk(child, inner)
        elif isinstance(statement, IfStmt):
            inner = _Scope(list(scope.loops), scope.guards + [statement.cond])
            walk(statement.body, inner)
        elif isinstance(statement, Assign):
            compiled.append(
                _translate_assign(statement, scope, declarations, fresh)
            )
        else:  # pragma: no cover - parser produces no other nodes
            raise SacPlanError(f"unknown statement {statement!r}")

    top = _Scope([], [])
    for statement in program.statements:
        walk(statement, top)
    return compiled


def _translate_assign(
    assign: Assign,
    scope: _Scope,
    declarations: dict[str, VarDecl],
    fresh,
) -> CompiledStatement:
    qualifiers: list[Qualifier] = []
    for var, lo, hi in scope.loops:
        qualifiers.append(Generator(VarPat(var), RangeExpr(lo, hi, inclusive=True)))
    qualifiers.extend(Guard(g) for g in scope.guards)

    if not assign.indices:
        return _translate_scalar(assign, qualifiers, scope)

    declaration = declarations.get(assign.target)
    if declaration is None:
        raise SacPlanError(
            f"array target {assign.target!r} needs a declaration, e.g. "
            f"'var {assign.target}: matrix(n, m)'"
        )
    key: Expr = (
        assign.indices[0]
        if len(assign.indices) == 1
        else TupleExpr(tuple(assign.indices))
    )

    if assign.op in _REDUCTION_OPS:
        value_name = fresh()
        qualifiers.append(LetQual(VarPat(value_name), assign.rhs))
        qualifiers.append(GroupByQual(None, key))
        head = TupleExpr((key, Reduce(_REDUCTION_OPS[assign.op], Var(value_name))))
    else:
        _check_deterministic(assign, scope)
        head = TupleExpr((key, assign.rhs))

    comp = Comprehension(head, tuple(qualifiers))
    query = BuilderApp(declaration.builder, declaration.args, comp)
    return CompiledStatement(assign.target, query, to_source(query))


def _translate_scalar(
    assign: Assign, qualifiers: list[Qualifier], scope: _Scope
) -> CompiledStatement:
    if assign.op == "=":
        if scope.loops:
            raise SacPlanError(
                f"plain '=' to scalar {assign.target!r} inside a loop is "
                "order-dependent; use '+=' or '*='"
            )
        return CompiledStatement(assign.target, assign.rhs, to_source(assign.rhs))
    comp = Comprehension(assign.rhs, tuple(qualifiers))
    query: Expr = Reduce(_REDUCTION_OPS[assign.op], comp)
    return CompiledStatement(assign.target, query, to_source(query))


def _check_deterministic(assign: Assign, scope: _Scope) -> None:
    """Every enclosing loop variable must feed the target indices."""
    index_vars = set()
    for index in assign.indices:
        index_vars |= free_vars(index)
    for var, _lo, _hi in scope.loops:
        if var not in index_vars:
            raise SacPlanError(
                f"assignment to {assign.target}[...] does not use loop "
                f"variable {var!r}: each iteration would overwrite the "
                "previous one; use '+='/'*=' for accumulations"
            )


def run(session, source: str, env: Optional[dict[str, Any]] = None) -> dict[str, Any]:
    """Translate and execute a loop program on a session.

    Statements run in order; each target's result is bound into the
    environment for the statements after it.  Returns the final
    environment (inputs plus every assigned target).
    """
    environment = dict(env or {})
    for statement in translate(source):
        environment[statement.target] = session.run(
            statement.source, environment
        )
    return environment
