"""Command-line interface: run SAC queries against NumPy data files.

Examples::

    # Row sums of a matrix stored in an .npy file
    python -m repro "tiled_vector(n)[ (i,+/m) | ((i,j),m) <- A, group by i ]" \
        --bind A=ratings.npy --define n=1000 --output sums.npy

    # Show the compilation report without running
    python -m repro "tiled(n,m)[ ((j,i),v) | ((i,j),v) <- A ]" \
        --bind A=data.npy --define n=500 --define m=400 --explain

Bindings: ``--bind NAME=file.npy`` loads an array and distributes it as
a tiled matrix/vector (``--sparse NAME=...`` uses CSC tiles);
``--define NAME=value`` binds an int/float scalar.  ``.npz`` archives
bind every member by its archive name prefixed with ``NAME_``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any

import numpy as np

from .core.session import SacSession
from .storage import TiledMatrix, TiledVector
from .storage.sparse_tiled import SparseTiledMatrix


def _parse_scalar(text: str) -> Any:
    for converter in (int, float):
        try:
            return converter(text)
        except ValueError:
            continue
    if text in ("true", "false"):
        return text == "true"
    raise argparse.ArgumentTypeError(f"cannot parse scalar {text!r}")


def _split_binding(binding: str) -> tuple[str, str]:
    name, _, value = binding.partition("=")
    if not name or not value:
        raise SystemExit(f"bindings look like NAME=value, got {binding!r}")
    return name, value


def _distribute(session: SacSession, array: np.ndarray, path: str, sparse: bool):
    if array.ndim == 1:
        return session.tiled_vector(array)
    if array.ndim == 2:
        if sparse:
            return session.sparse_tiled(array)
        return session.tiled(array)
    raise SystemExit(f"{path}: only 1-D and 2-D arrays are supported")


def _bind_file(
    session: SacSession, env: dict, name: str, path: str, sparse: bool
) -> None:
    """Bind one ``.npy`` array, or every member of an ``.npz`` archive
    (each as ``NAME_member``)."""
    loaded = np.load(path)
    if isinstance(loaded, np.lib.npyio.NpzFile):
        for member in loaded.files:
            env[f"{name}_{member}"] = _distribute(
                session, loaded[member], path, sparse
            )
    else:
        env[name] = _distribute(session, loaded, path, sparse)


def _save_result(result: Any, path: str) -> None:
    if isinstance(result, (TiledMatrix, TiledVector, SparseTiledMatrix)):
        np.save(path, result.to_numpy())
    elif hasattr(result, "to_numpy"):
        np.save(path, result.to_numpy())
    elif isinstance(result, list):
        np.save(path, np.array(result, dtype=object), allow_pickle=True)
    else:
        np.save(path, np.asarray(result))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Compile and run a SAC array comprehension.",
    )
    parser.add_argument(
        "query",
        help="the comprehension to run (or a loop program with --loops)",
    )
    parser.add_argument(
        "--loops", action="store_true",
        help="treat the input as a DIABLO-style loop program; runs every "
             "statement and prints/saves each assigned target",
    )
    parser.add_argument(
        "--bind", action="append", default=[], metavar="NAME=FILE",
        help="bind NAME to a .npy array, distributed as a tiled array",
    )
    parser.add_argument(
        "--sparse", action="append", default=[], metavar="NAME=FILE",
        help="like --bind but stored as CSC tiles (zero tiles dropped)",
    )
    parser.add_argument(
        "--define", action="append", default=[], metavar="NAME=VALUE",
        help="bind NAME to a scalar",
    )
    parser.add_argument(
        "--tile-size", type=int, default=100, help="block side length N"
    )
    parser.add_argument(
        "--pipeline", action="store_true",
        help="run with the task-level pipelined scheduler (tasks fire as "
             "their inputs land instead of waiting at stage barriers)",
    )
    parser.add_argument(
        "--memory-limit", metavar="BYTES",
        help="cap resident block bytes (accepts 64M/2G-style suffixes); "
             "evicted partitions spill to disk (REPRO_SPILL_DIR or a "
             "temp directory) and restore transparently",
    )
    parser.add_argument(
        "--no-fusion", action="store_true",
        help="pin fused per-tile kernel codegen off (overrides "
             "REPRO_FUSION=1); fused chains then run the interpreter "
             "tile pipeline",
    )
    parser.add_argument(
        "--explain", action="store_true",
        help="print the compilation report instead of executing",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="with --explain: emit the plan (rule, strategy, pass trace, "
             "logical and physical IR) as JSON instead of the text report",
    )
    parser.add_argument(
        "--output", metavar="FILE",
        help="save the result to a .npy file (default: print a summary)",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="print engine metrics after execution (counter summary, "
             "per-stage task-time histograms, straggler ratio, critical "
             "path; with --json, emitted as one JSON object)",
    )
    return parser


def _metrics_report(session: SacSession, as_json: bool) -> None:
    """Execution metrics: counters plus task-level timing statistics."""
    total = session.engine.metrics.total
    if as_json:
        import json

        print(json.dumps({
            "stages": total.stages,
            "tasks": total.tasks,
            "shuffles": total.shuffles,
            "shuffle_records": total.shuffle_records,
            "shuffle_bytes": total.shuffle_bytes,
            "task_retries": total.task_retries,
            "compute_seconds": total.compute_seconds,
            "simulated_seconds": session.simulated_time(),
            "critical_path_seconds": total.critical_path_seconds(),
            "straggler_ratio": total.straggler_ratio(),
            "stage_histograms": total.stage_histograms(),
            "pipeline": session.engine.pipeline,
            "spilled_bytes": total.spilled_bytes,
            "restored_bytes": total.restored_bytes,
            "spill_restores": total.spill_restores,
            "spill_hit_rate": total.spill_hit_rate(),
            "prefetch_hits": total.prefetch_hits,
            "restore_stall_seconds": total.restore_stall_seconds,
            "kernel_cache_hits": total.kernel_cache_hits,
            "kernel_cache_misses": total.kernel_cache_misses,
        }, indent=2))
        return
    print(total.summary())
    if total.kernel_cache_hits or total.kernel_cache_misses:
        print(
            f"fused kernels: {total.kernel_cache_misses} compiled, "
            f"{total.kernel_cache_hits} cache hits"
        )
    if session.engine.block_manager.spill_enabled:
        print(
            f"spill tier: {total.spilled_bytes} bytes spilled, "
            f"{total.restored_bytes} restored "
            f"({total.spill_restores} restores, hit rate "
            f"{total.spill_hit_rate():.2f}), {total.prefetch_hits} prefetch "
            f"hits, {total.restore_stall_seconds:.4f}s restore stall"
        )
    print(f"simulated cluster time: {session.simulated_time():.4f}s")
    print(
        f"task scheduling: critical path "
        f"{total.critical_path_seconds():.4f}s, straggler ratio "
        f"{total.straggler_ratio():.2f}, {total.task_retries} retries"
        f"{' (pipelined)' if session.engine.pipeline else ''}"
    )
    for index, hist in enumerate(total.stage_histograms()):
        print(
            f"  stage {index}: {hist['num_tasks']} tasks, "
            f"p50 {hist['p50_seconds']:.4f}s, p95 {hist['p95_seconds']:.4f}s, "
            f"max {hist['max_seconds']:.4f}s"
        )


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        # ``repro serve``: the multi-tenant query front door.  Dispatch
        # before the query parser, which would otherwise eat "serve" as
        # the query string.
        from .serve import serve_main

        return serve_main(argv[1:])
    args = build_parser().parse_args(argv)
    options = None
    if args.no_fusion:
        from .planner import PlannerOptions

        options = PlannerOptions(fusion=False)
    session = SacSession(
        tile_size=args.tile_size,
        runner="pipelined" if args.pipeline else None,
        pipeline=True if args.pipeline else None,
        memory_limit=args.memory_limit,
        options=options,
    )

    env: dict[str, Any] = {}
    for binding in args.bind:
        name, path = _split_binding(binding)
        _bind_file(session, env, name, path, sparse=False)
    for binding in args.sparse:
        name, path = _split_binding(binding)
        _bind_file(session, env, name, path, sparse=True)
    for binding in args.define:
        name, value = _split_binding(binding)
        env[name] = _parse_scalar(value)

    if args.loops:
        return _run_loops(session, args, env)

    if args.explain:
        if args.json:
            import json

            compiled = session.compile(args.query, env)
            print(json.dumps(compiled.plan.to_dict(), indent=2))
        else:
            print(session.explain(args.query, env))
        return 0

    if args.json and not args.metrics:
        raise SystemExit("--json requires --explain or --metrics")

    result = session.run(args.query, env)

    if args.output:
        _save_result(result, args.output)
        print(f"saved result to {args.output}")
    else:
        if hasattr(result, "to_numpy"):
            materialized = result.to_numpy()
            print(f"result: {type(result).__name__} shape "
                  f"{getattr(materialized, 'shape', '?')}")
            print(materialized)
        else:
            print(f"result: {result!r}")

    if args.metrics:
        _metrics_report(session, args.json)
    return 0


def _run_loops(session: SacSession, args, env: dict[str, Any]) -> int:
    """Translate and execute a loop program (``--loops``)."""
    from .diablo import translate

    program = args.query
    statements = translate(program)
    if args.explain:
        if args.json:
            import json

            plans = {
                statement.target: session.compile(
                    statement.source, env
                ).plan.to_dict()
                for statement in statements
            }
            print(json.dumps(plans, indent=2))
        else:
            for statement in statements:
                print(f"-- {statement.target}")
                print(session.explain(statement.source, env))
                print()
        return 0
    for statement in statements:
        env[statement.target] = session.run(statement.source, env)
        result = env[statement.target]
        if hasattr(result, "to_numpy"):
            print(f"{statement.target}: shape {result.to_numpy().shape}")
        else:
            print(f"{statement.target}: {result!r}")
        if args.output:
            _save_result(result, f"{statement.target}_{args.output}")
    if args.metrics:
        _metrics_report(session, args.json)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
